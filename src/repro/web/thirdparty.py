"""The third-party service catalogue.

The paper's central empirical finding is that a *small number of
parties* — tracking and advertising services — cause the majority of
redundant connections (§5.3).  This module builds synthetic versions of
exactly those services, with the DNS, certificate and embedding
structure the paper reverse-engineered:

* **Google Analytics / Tag Manager** — one interchangeable server fleet
  in one /24, but the two domains are balanced over *disjoint* address
  subsets, so their answers never overlap (Figure 3) and every GA
  connection after a GTM connection is IP-redundant (Table 2 rank 1).
* **Facebook** — ``connect.facebook.net`` and ``www.facebook.com`` in
  the same /24 with disjoint pools; WFB endpoints can serve CFB content
  but not vice versa (§5.3.1).
* **Google ads** — one shared pool for the syndication/doubleclick
  domains (a big shared certificate → IP cause among themselves), with
  ``adservice.google.com``/``.de`` carrying *separate* GTS certificates
  on the same pool (Table 4's CERT heavy-hitters) and
  ``www.googleadservices.com`` presenting a narrower certificate (the
  Table 4 ``googleads…`` CERT rows).
* **gstatic / googleapis** — shared pools with per-domain rotation that
  overlap *sometimes* (the fluctuating rows of Figure 3); fonts are
  fetched anonymously, so gstatic also feeds the CRED cause.
* **Hotjar** (Amazon CloudFront), **wp.com** (Automattic, pools in
  different /24s), **Klaviyo** (the paper's top CERT domain: two Let's
  Encrypt certificates on one IP), **Squarespace**, **Unruly**,
  **Reddit** — per Tables 2/4/6/12.
* A generated long tail of small widget services covering all four
  structural patterns, so the issuer/AS distributions have realistic
  mass outside the heavy hitters.

Each service contributes an ``embed`` template: a function producing the
resource subtree a website gains by adopting the service (e.g. the GTM
script that loads the GA script that fires the anonymous beacon —
which is the paper's same-domain CRED case).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.dns.loadbalancer import RotationPolicy, StaticPolicy
from repro.dns.zone import AddressEntry, DnsNamespace
from repro.tls.certificate import Certificate
from repro.tls.issuers import (
    AMAZON_CA,
    DIGICERT,
    GLOBALSIGN,
    GODADDY,
    GOOGLE_TRUST_SERVICES,
    LETS_ENCRYPT,
    MICROSOFT_CA as MICROSOFT_CA_ISSUER,
    SECTIGO,
    IssuerRegistry,
)
from repro.web.hosting import ProviderDirectory
from repro.web.resources import RequestMode, Resource, ResourceType
from repro.web.server import OriginServer, build_fleet

__all__ = ["ThirdPartyService", "ThirdPartyCatalog"]


@dataclass
class ThirdPartyService:
    """A third-party widget/service websites can embed."""

    key: str
    adoption: float
    embed: Callable[[random.Random], list[Resource]]
    domains: tuple[str, ...]
    rank_boost: float = 1.5
    tail_factor: float = 0.55
    _decay_ratio: float | None = field(default=None, repr=False)

    def effective_adoption(self, rank_percentile: float) -> float:
        """Adoption probability given a site's popularity.

        ``rank_percentile`` is 0.0 for the most popular site and 1.0 for
        the least popular; popular sites embed more third parties, which
        is why the paper's Alexa Top 100k shows notably more redundancy
        than the HTTP Archive's long tail (Table 1).  Adoption scales
        linearly from ``adoption * rank_boost`` at the top to
        ``adoption * tail_factor`` at the bottom.
        """
        # Exponential interpolation: adoption decays geometrically from
        # ``adoption * rank_boost`` at the top of the ranking to
        # ``adoption * tail_factor`` at the bottom, mimicking the sharp
        # popularity fall-off of tracker adoption on the real web.
        ratio = self._decay_ratio
        if ratio is None:
            if self.rank_boost <= 0 or self.tail_factor <= 0:
                raise ValueError("rank_boost and tail_factor must be positive")
            ratio = self.tail_factor / self.rank_boost
            self._decay_ratio = ratio
        factor = self.rank_boost * ratio**rank_percentile
        return min(1.0, max(0.0, self.adoption * factor))


def _maybe(rng: random.Random, probability: float) -> bool:
    return rng.random() < probability


def _shuffled(rng: random.Random, items: list[Resource]) -> list[Resource]:
    out = list(items)
    rng.shuffle(out)
    return out


@dataclass
class ThirdPartyCatalog:
    """Builds every third-party service into the shared substrates."""

    providers: ProviderDirectory
    namespace: DnsNamespace
    issuers: IssuerRegistry
    servers: dict[str, OriginServer]
    rng: random.Random
    tail_services: int = 60
    #: Ablation: fleets advertise reusable origins via ORIGIN frames.
    advertise_origin_frames: bool = False
    #: Ablation: coalescable domains share pools and rotation salts.
    coalesce_friendly_dns: bool = False
    #: Ablation: sharded services merge their disjunct certificates.
    merged_certificates: bool = False
    services: list[ThirdPartyService] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Wiring helpers
    # ------------------------------------------------------------------
    def _install_fleet(
        self,
        provider_name: str,
        cert_map: dict[str, Certificate],
        count: int,
        *,
        name: str,
        alt_svc_h3: bool = False,
        excluded_domains: set[str] | None = None,
        origin_frame_origins: tuple[str, ...] = (),
    ) -> list[str]:
        """Allocate ``count`` addresses in one /24 and install servers."""
        ips = self.providers[provider_name].addresses(count)
        if self.advertise_origin_frames and not origin_frame_origins:
            served = [
                domain for domain in cert_map
                if domain not in (excluded_domains or ())
            ]
            origin_frame_origins = tuple(f"https://{d}" for d in served)
        for server in build_fleet(
            ips,
            name=name,
            cert_map=cert_map,
            alt_svc_h3=alt_svc_h3,
            excluded_domains=excluded_domains,
            origin_frame_origins=origin_frame_origins,
        ):
            self.servers[server.ip] = server
        return ips

    def _dns(
        self,
        domain: str,
        pool: Sequence[str],
        *,
        answers: int = 2,
        period_s: float = 360.0,
        static: bool = False,
        salt: str | None = None,
        ttl: int = 120,
    ) -> None:
        """Point ``domain`` at ``pool`` with the chosen balancing."""
        policy = StaticPolicy() if static else RotationPolicy(
            answer_count=answers, period_s=period_s
        )
        self.namespace.add_address(
            domain, AddressEntry(pool=tuple(pool), policy=policy, salt=salt, ttl=ttl)
        )

    # ------------------------------------------------------------------
    # The named services of the paper
    # ------------------------------------------------------------------
    def _build_google_analytics(self) -> ThirdPartyService:
        cert = self.issuers.issue(
            GOOGLE_TRUST_SERVICES,
            ("*.google-analytics.com", "*.googletagmanager.com"),
        )
        ips = self._install_fleet(
            "GOOGLE",
            {
                "www.google-analytics.com": cert,
                "www.googletagmanager.com": cert,
            },
            12,
            name="google-analytics-edge",
        )
        if self.coalesce_friendly_dns:
            # Mitigation: both domains behind one synchronized entry, so
            # answers always overlap and coalescing succeeds.
            self._dns("www.googletagmanager.com", ips, salt="ga-pool")
            self._dns("www.google-analytics.com", ips, salt="ga-pool")
        else:
            # Disjoint halves of one /24: interchangeable servers, but
            # the two domains' DNS answers can never overlap — the
            # paper's "unsynchronized DNS load-balancing" in its purest
            # form.
            self._dns("www.googletagmanager.com", ips[:6])
            self._dns("www.google-analytics.com", ips[6:])

        def embed(rng: random.Random) -> list[Resource]:
            beacon = Resource(
                domain="www.google-analytics.com",
                path="/j/collect",
                rtype=ResourceType.BEACON,
                # Sent without credentials: Chromium flips privacy_mode,
                # yielding the paper's same-domain CRED case.
                mode=RequestMode.CORS_ANON,
                size=35,
            )
            analytics = Resource(
                domain="www.google-analytics.com",
                path="/analytics.js",
                rtype=ResourceType.SCRIPT,
                size=49_000,
                children=[beacon] if _maybe(rng, 0.95) else [],
            )
            if _maybe(rng, 0.92):
                gtm_children = [analytics]
                if _maybe(rng, 0.25):
                    # Container-config fetch without credentials: a
                    # second same-domain CRED source on the GTM host.
                    gtm_children.append(
                        Resource(
                            domain="www.googletagmanager.com",
                            path="/container/config.json",
                            rtype=ResourceType.XHR,
                            mode=RequestMode.CORS_ANON,
                            size=900,
                        )
                    )
                return [
                    Resource(
                        domain="www.googletagmanager.com",
                        path=f"/gtm.js?id=GTM-{rng.randint(1000, 9999)}",
                        rtype=ResourceType.SCRIPT,
                        size=95_000,
                        children=gtm_children,
                    )
                ]
            return [analytics]

        return ThirdPartyService(
            key="google-analytics",
            adoption=0.55,
            embed=embed,
            domains=("www.googletagmanager.com", "www.google-analytics.com"),
            rank_boost=1.5,
            tail_factor=0.3,
        )

    def _build_facebook(self) -> ThirdPartyService:
        cert = self.issuers.issue(DIGICERT, ("*.facebook.com", "*.facebook.net"))
        cfb = "connect.facebook.net"
        wfb = "www.facebook.com"
        ips = self._install_fleet(
            "FACEBOOK",
            {cfb: cert, wfb: cert},
            8,
            name="facebook-edge",
        )
        if self.coalesce_friendly_dns:
            # Mitigation ("resolving CFB to WFB would reduce
            # redundancy"): both names point at the WFB half, which can
            # serve both resources.
            self._dns(cfb, ips[4:], salt="fb-pool")
            self._dns(wfb, ips[4:], salt="fb-pool")
        else:
            # WFB endpoints can serve the CFB script, but not vice versa
            # ("there seems to be a real resource distribution in the
            # background in that direction", §5.3.1).
            for ip in ips[:4]:
                self.servers[ip].excluded_domains.add(wfb)
            self._dns(cfb, ips[:4])
            self._dns(wfb, ips[4:])

        def embed(rng: random.Random) -> list[Resource]:
            pixel = Resource(
                domain=wfb, path="/tr/", rtype=ResourceType.IMAGE, size=44
            )
            children = [pixel]
            if _maybe(rng, 0.25):
                children.append(
                    Resource(
                        domain=wfb,
                        path="/plugins/like.php",
                        rtype=ResourceType.IFRAME,
                        size=12_000,
                    )
                )
            if _maybe(rng, 0.3):
                # Uncredentialed signals fetch back to the SDK host:
                # same-domain CRED, mirroring the GA beacon pattern.
                children.append(
                    Resource(
                        domain=cfb,
                        path="/signals/config.json",
                        rtype=ResourceType.XHR,
                        mode=RequestMode.CORS_ANON,
                        size=1_100,
                    )
                )
            return [
                Resource(
                    domain=cfb,
                    path="/en_US/fbevents.js",
                    rtype=ResourceType.SCRIPT,
                    size=82_000,
                    children=children,
                )
            ]

        return ThirdPartyService(
            key="facebook",
            adoption=0.25,
            embed=embed,
            domains=(cfb, wfb),
            rank_boost=1.6,
            tail_factor=0.3,
        )

    def _build_google_ads(self) -> ThirdPartyService:
        big_cert = self.issuers.issue(
            GOOGLE_TRUST_SERVICES,
            (
                "*.googlesyndication.com",
                "*.doubleclick.net",
                "*.googletagservices.com",
                "*.googleadservices.com",
                "*.g.doubleclick.net",
            ),
        )
        if self.merged_certificates:
            # Mitigation: Google changes its issuing policy so the big
            # certificate covers the adservice/adwords names too.
            adwords_cert = adservice_com_cert = adservice_de_cert = (
                self.issuers.issue(
                    GOOGLE_TRUST_SERVICES,
                    big_cert.sans
                    + ("adservice.google.com", "adservice.google.de"),
                )
            )
        else:
            adwords_cert = self.issuers.issue(
                GOOGLE_TRUST_SERVICES,
                ("www.googleadservices.com", "partner.googleadservices.com"),
            )
            adservice_com_cert = self.issuers.issue(
                GOOGLE_TRUST_SERVICES, ("adservice.google.com",)
            )
            adservice_de_cert = self.issuers.issue(
                GOOGLE_TRUST_SERVICES, ("adservice.google.de",)
            )
        pagead2 = "pagead2.googlesyndication.com"
        googleads = "googleads.g.doubleclick.net"
        cert_map = {
            pagead2: big_cert,
            "tpc.googlesyndication.com": big_cert,
            googleads: big_cert,
            "stats.g.doubleclick.net": big_cert,
            "securepubads.g.doubleclick.net": big_cert,
            "cm.g.doubleclick.net": big_cert,
            "www.googletagservices.com": big_cert,
            "www.googleadservices.com": adwords_cert,
            "partner.googleadservices.com": adwords_cert,
            "adservice.google.com": adservice_com_cert,
            "adservice.google.de": adservice_de_cert,
        }
        ips = self._install_fleet("GOOGLE", cert_map, 16, name="google-ads-edge")
        # One shared pool, per-domain unsynchronized rotation: answers
        # overlap *sometimes*, producing both IP redundancy (different
        # IPs, covering certificate) and CERT redundancy (same IP, the
        # adservice/adwords certificates do not cover the other names).
        shared_salt = "ads-pool" if self.coalesce_friendly_dns else None
        for domain in cert_map:
            self._dns(domain, ips, answers=2, salt=shared_salt)

        def embed(rng: random.Random) -> list[Resource]:
            stats = Resource(
                domain="stats.g.doubleclick.net",
                path="/r/collect",
                rtype=ResourceType.BEACON,
                size=35,
            )
            googleads_children = [stats] if _maybe(rng, 0.7) else []
            if _maybe(rng, 0.3):
                googleads_children.append(
                    Resource(
                        domain="cm.g.doubleclick.net",
                        path="/cm",
                        rtype=ResourceType.XHR,
                        mode=RequestMode.NO_CORS,
                        size=120,
                    )
                )
            children = [
                Resource(
                    domain=googleads,
                    path="/pagead/id",
                    rtype=ResourceType.SCRIPT,
                    size=22_000,
                    children=googleads_children,
                )
            ]
            if _maybe(rng, 0.6):
                children.append(
                    Resource(
                        domain="adservice.google.com",
                        path="/adsid/integrator.js",
                        rtype=ResourceType.SCRIPT,
                        size=4_000,
                    )
                )
            if _maybe(rng, 0.7):
                children.append(
                    Resource(
                        domain="tpc.googlesyndication.com",
                        path="/simgad/main.png",
                        rtype=ResourceType.IMAGE,
                        size=30_000,
                    )
                )
            if _maybe(rng, 0.6):
                children.append(
                    Resource(
                        domain="www.googletagservices.com",
                        path="/tag/js/gpt.js",
                        rtype=ResourceType.SCRIPT,
                        size=60_000,
                    )
                )
            if _maybe(rng, 0.4):
                children.append(
                    Resource(
                        domain="securepubads.g.doubleclick.net",
                        path="/gpt/pubads_impl.js",
                        rtype=ResourceType.SCRIPT,
                        size=200_000,
                    )
                )
            if _maybe(rng, 0.5):
                children.append(
                    Resource(
                        domain="www.googleadservices.com",
                        path="/pagead/conversion.js",
                        rtype=ResourceType.SCRIPT,
                        size=30_000,
                        children=[
                            Resource(
                                domain="partner.googleadservices.com",
                                path="/gampad/cookie.js",
                                rtype=ResourceType.SCRIPT,
                                size=3_000,
                            )
                        ]
                        if _maybe(rng, 0.6)
                        else [],
                    )
                )
            return [
                Resource(
                    domain=pagead2,
                    path="/pagead/js/adsbygoogle.js",
                    rtype=ResourceType.SCRIPT,
                    size=250_000,
                    children=_shuffled(rng, children),
                )
            ]

        return ThirdPartyService(
            key="google-ads",
            adoption=0.28,
            embed=embed,
            domains=tuple(cert_map),
            rank_boost=2.0,
            tail_factor=0.15,
        )

    def _build_gstatic(self) -> ThirdPartyService:
        cert = self.issuers.issue(
            GOOGLE_TRUST_SERVICES,
            (
                "*.gstatic.com",
                "www.google.com",
                "www.google.de",
                "apis.google.com",
                "ogs.google.com",
                "*.youtube.com",
                "*.ytimg.com",
            ),
        )
        gstatic_ips = self._install_fleet(
            "GOOGLE",
            {
                "www.gstatic.com": cert,
                "fonts.gstatic.com": cert,
                "i.ytimg.com": cert,
            },
            8,
            name="gstatic-edge",
            alt_svc_h3=True,
        )
        self._dns("www.gstatic.com", gstatic_ips, answers=2)
        self._dns("fonts.gstatic.com", gstatic_ips, answers=2)
        self._dns("i.ytimg.com", gstatic_ips, answers=2)

        web_ips = self._install_fleet(
            "GOOGLE",
            {
                "www.google.com": cert,
                "www.google.de": cert,
                "apis.google.com": cert,
                "ogs.google.com": cert,
            },
            6,
            name="google-web-edge",
        )
        for domain in ("www.google.com", "www.google.de", "apis.google.com",
                       "ogs.google.com"):
            self._dns(domain, web_ips, answers=2)

        yt_ips = self._install_fleet(
            "GOOGLE", {"www.youtube.com": cert}, 4, name="youtube-edge"
        )
        self._dns("www.youtube.com", yt_ips, answers=2)

        def embed(rng: random.Random) -> list[Resource]:
            children = []
            if _maybe(rng, 0.75):
                children.append(
                    Resource(
                        domain="apis.google.com",
                        path="/js/platform.js",
                        rtype=ResourceType.SCRIPT,
                        size=30_000,
                    )
                )
            if _maybe(rng, 0.55):
                children.append(
                    Resource(
                        domain="ogs.google.com",
                        path="/widget/app",
                        rtype=ResourceType.XHR,
                        mode=RequestMode.NO_CORS,
                        size=8_000,
                    )
                )
            if _maybe(rng, 0.6):
                # The crawler's geo rewrite turns this into
                # www.google.de from the German vantage point.
                children.append(
                    Resource(
                        domain="www.google.com",
                        path="/recaptcha/api.js",
                        rtype=ResourceType.SCRIPT,
                        size=1_500,
                    )
                )
            return [
                Resource(
                    domain="www.gstatic.com",
                    path="/firebasejs/app.js",
                    rtype=ResourceType.SCRIPT,
                    size=90_000,
                    children=_shuffled(rng, children),
                )
            ]

        return ThirdPartyService(
            key="google-platform",
            adoption=0.16,
            embed=embed,
            domains=(
                "www.gstatic.com",
                "fonts.gstatic.com",
                "apis.google.com",
                "ogs.google.com",
                "www.google.com",
                "www.google.de",
            ),
            rank_boost=2.2,
            tail_factor=0.2,
        )

    def _build_google_fonts(self) -> ThirdPartyService:
        cert = self.issuers.issue(GOOGLE_TRUST_SERVICES, ("*.googleapis.com",))
        ips = self._install_fleet(
            "GOOGLE",
            {
                "fonts.googleapis.com": cert,
                "ajax.googleapis.com": cert,
                "maps.googleapis.com": cert,
            },
            8,
            name="googleapis-edge",
            alt_svc_h3=True,
        )
        for domain in ("fonts.googleapis.com", "ajax.googleapis.com",
                       "maps.googleapis.com"):
            self._dns(domain, ips, answers=2)

        def embed(rng: random.Random) -> list[Resource]:
            font_count = rng.randint(1, 3)
            fonts = [
                Resource(
                    domain="fonts.gstatic.com",
                    path=f"/s/font{index}.woff2",
                    rtype=ResourceType.FONT,
                    size=28_000,
                )
                for index in range(font_count)
            ]
            resources = [
                Resource(
                    domain="fonts.googleapis.com",
                    path="/css?family=Roboto",
                    rtype=ResourceType.STYLESHEET,
                    size=1_200,
                    children=fonts,
                )
            ]
            if _maybe(rng, 0.25):
                # A credentialed gstatic fetch alongside the anonymous
                # fonts: same pool, so same-IP collisions become CRED
                # and misses become IP (both observed in Table 12).
                resources.append(
                    Resource(
                        domain="www.gstatic.com",
                        path="/images/branding/logo.png",
                        rtype=ResourceType.IMAGE,
                        size=6_000,
                    )
                )
            return resources

        return ThirdPartyService(
            key="google-fonts",
            adoption=0.45,
            embed=embed,
            domains=("fonts.googleapis.com", "fonts.gstatic.com"),
            rank_boost=1.3,
            tail_factor=0.5,
        )

    def _build_ajax_libs(self) -> ThirdPartyService:
        def embed(rng: random.Random) -> list[Resource]:
            resources = [
                Resource(
                    domain="ajax.googleapis.com",
                    path="/ajax/libs/jquery/3.6.0/jquery.min.js",
                    rtype=ResourceType.SCRIPT,
                    size=90_000,
                )
            ]
            if _maybe(rng, 0.5):
                resources.append(
                    Resource(
                        domain="fonts.googleapis.com",
                        path="/icon?family=Material+Icons",
                        rtype=ResourceType.STYLESHEET,
                        size=900,
                        children=[
                            Resource(
                                domain="fonts.gstatic.com",
                                path="/s/materialicons.woff2",
                                rtype=ResourceType.FONT,
                                size=60_000,
                            )
                        ],
                    )
                )
            return resources

        return ThirdPartyService(
            key="ajax-libs",
            adoption=0.18,
            embed=embed,
            domains=("ajax.googleapis.com",),
            rank_boost=1.2,
            tail_factor=0.6,
        )

    def _build_google_maps(self) -> ThirdPartyService:
        def embed(rng: random.Random) -> list[Resource]:
            return [
                Resource(
                    domain="fonts.googleapis.com",
                    path="/css?family=Google+Sans",
                    rtype=ResourceType.STYLESHEET,
                    size=800,
                ),
                Resource(
                    domain="maps.googleapis.com",
                    path="/maps/api/js",
                    rtype=ResourceType.SCRIPT,
                    size=120_000,
                ),
            ]

        return ThirdPartyService(
            key="google-maps",
            adoption=0.05,
            embed=embed,
            domains=("maps.googleapis.com",),
            rank_boost=1.2,
            tail_factor=0.5,
        )

    def _build_youtube(self) -> ThirdPartyService:
        def embed(rng: random.Random) -> list[Resource]:
            thumbs = [
                Resource(
                    domain="i.ytimg.com",
                    path=f"/vi/{rng.randint(0, 10**6)}/hqdefault.jpg",
                    rtype=ResourceType.IMAGE,
                    size=25_000,
                )
            ]
            return [
                Resource(
                    domain="www.gstatic.com",
                    path="/youtube/img/promos.js",
                    rtype=ResourceType.SCRIPT,
                    size=12_000,
                ),
                Resource(
                    domain="www.youtube.com",
                    path="/embed/player",
                    rtype=ResourceType.IFRAME,
                    size=500_000,
                    children=thumbs,
                ),
            ]

        return ThirdPartyService(
            key="youtube",
            adoption=0.07,
            embed=embed,
            domains=("www.youtube.com", "i.ytimg.com"),
            rank_boost=1.3,
            tail_factor=0.5,
        )

    def _build_hotjar(self) -> ThirdPartyService:
        cert = self.issuers.issue(AMAZON_CA, ("*.hotjar.com",))
        domains = (
            "static.hotjar.com",
            "script.hotjar.com",
            "vars.hotjar.com",
            "in.hotjar.com",
        )
        ips = self._install_fleet(
            "AMAZON-02", {domain: cert for domain in domains}, 6,
            name="hotjar-cloudfront",
        )
        for domain in domains:
            self._dns(domain, ips, answers=2)

        def embed(rng: random.Random) -> list[Resource]:
            children = [
                Resource(
                    domain="script.hotjar.com",
                    path="/modules.js",
                    rtype=ResourceType.SCRIPT,
                    size=180_000,
                    children=[
                        Resource(
                            domain="in.hotjar.com",
                            path="/api/v2/sites",
                            rtype=ResourceType.XHR,
                            mode=RequestMode.CORS_CREDENTIALED,
                            size=500,
                        )
                    ]
                    if _maybe(rng, 0.6)
                    else [],
                ),
                Resource(
                    domain="vars.hotjar.com",
                    path="/box.html",
                    rtype=ResourceType.IFRAME,
                    size=2_000,
                ),
            ]
            return [
                Resource(
                    domain="static.hotjar.com",
                    path="/c/hotjar.js",
                    rtype=ResourceType.SCRIPT,
                    size=4_000,
                    children=_shuffled(rng, children),
                )
            ]

        return ThirdPartyService(
            key="hotjar",
            adoption=0.07,
            embed=embed,
            domains=domains,
            rank_boost=1.4,
            tail_factor=0.3,
        )

    def _build_wordpress(self) -> ThirdPartyService:
        cert = self.issuers.issue(LETS_ENCRYPT, ("*.wp.com",))
        c0_ips = self._install_fleet(
            "AUTOMATTIC", {"c0.wp.com": cert, "stats.wp.com": cert}, 4,
            name="wp-c0",
        )
        stats_ips = self._install_fleet(
            "AUTOMATTIC", {"c0.wp.com": cert, "stats.wp.com": cert}, 4,
            name="wp-stats",
        )
        # Pools in *different* /24s that are not interchangeable — the
        # paper's counter-example of genuinely distributed resources.
        self._dns("c0.wp.com", c0_ips, answers=2)
        self._dns("stats.wp.com", stats_ips, answers=2)

        def embed(rng: random.Random) -> list[Resource]:
            return [
                Resource(
                    domain="c0.wp.com",
                    path="/c/5.7/wp-includes/js/jquery.js",
                    rtype=ResourceType.SCRIPT,
                    size=96_000,
                ),
                Resource(
                    domain="stats.wp.com",
                    path="/e-202123.js",
                    rtype=ResourceType.SCRIPT,
                    size=10_000,
                ),
            ]

        return ThirdPartyService(
            key="wordpress",
            adoption=0.05,
            embed=embed,
            domains=("c0.wp.com", "stats.wp.com"),
            rank_boost=0.9,
            tail_factor=0.8,
        )

    def _build_klaviyo(self) -> ThirdPartyService:
        if self.merged_certificates:
            static_cert = fast_cert = self.issuers.issue(
                LETS_ENCRYPT, ("static.klaviyo.com", "fast.a.klaviyo.com")
            )
        else:
            static_cert = self.issuers.issue(LETS_ENCRYPT, ("static.klaviyo.com",))
            fast_cert = self.issuers.issue(LETS_ENCRYPT, ("fast.a.klaviyo.com",))
        ips = self._install_fleet(
            "AMAZON-02",
            {"static.klaviyo.com": static_cert, "fast.a.klaviyo.com": fast_cert},
            1,
            name="klaviyo-edge",
        )
        # A single shared IP with two disjoint Let's Encrypt
        # certificates: the paper's #1 CERT-cause domain (Table 4).
        self._dns("static.klaviyo.com", ips, static=True)
        self._dns("fast.a.klaviyo.com", ips, static=True)

        def embed(rng: random.Random) -> list[Resource]:
            return [
                Resource(
                    domain="static.klaviyo.com",
                    path="/onsite/js/klaviyo.js",
                    rtype=ResourceType.SCRIPT,
                    size=30_000,
                    children=[
                        Resource(
                            domain="fast.a.klaviyo.com",
                            path="/media/api/identify",
                            rtype=ResourceType.SCRIPT,
                            size=15_000,
                        )
                    ],
                )
            ]

        return ThirdPartyService(
            key="klaviyo",
            adoption=0.025,
            embed=embed,
            domains=("static.klaviyo.com", "fast.a.klaviyo.com"),
            rank_boost=0.9,
            tail_factor=0.7,
        )

    def _build_squarespace(self) -> ThirdPartyService:
        if self.merged_certificates:
            static_cert = images_cert = self.issuers.issue(
                DIGICERT,
                ("static1.squarespace.com", "images.squarespace-cdn.com"),
            )
        else:
            static_cert = self.issuers.issue(DIGICERT, ("static1.squarespace.com",))
            images_cert = self.issuers.issue(DIGICERT, ("images.squarespace-cdn.com",))
        ips = self._install_fleet(
            "FASTLY",
            {
                "static1.squarespace.com": static_cert,
                "images.squarespace-cdn.com": images_cert,
            },
            1,
            name="squarespace-edge",
        )
        self._dns("static1.squarespace.com", ips, static=True)
        self._dns("images.squarespace-cdn.com", ips, static=True)

        def embed(rng: random.Random) -> list[Resource]:
            images = [
                Resource(
                    domain="images.squarespace-cdn.com",
                    path=f"/content/img{index}.jpg",
                    rtype=ResourceType.IMAGE,
                    size=80_000,
                )
                for index in range(rng.randint(1, 4))
            ]
            return [
                Resource(
                    domain="static1.squarespace.com",
                    path="/static/vta/site.js",
                    rtype=ResourceType.SCRIPT,
                    size=120_000,
                    children=images,
                )
            ]

        return ThirdPartyService(
            key="squarespace",
            adoption=0.02,
            embed=embed,
            domains=("static1.squarespace.com", "images.squarespace-cdn.com"),
            rank_boost=0.8,
            tail_factor=0.9,
        )

    def _build_unruly(self) -> ThirdPartyService:
        rx_cert = self.issuers.issue(DIGICERT, ("sync.1rx.io",))
        unruly_cert = self.issuers.issue(DIGICERT, ("sync.targeting.unrulymedia.com",))
        ips = self._install_fleet(
            "EDGECAST",
            {
                "sync.1rx.io": rx_cert,
                "sync.targeting.unrulymedia.com": unruly_cert,
            },
            1,
            name="unruly-edge",
        )
        self._dns("sync.1rx.io", ips, static=True)
        self._dns("sync.targeting.unrulymedia.com", ips, static=True)

        def embed(rng: random.Random) -> list[Resource]:
            return [
                Resource(
                    domain="sync.1rx.io",
                    path="/usync",
                    rtype=ResourceType.IMAGE,
                    size=43,
                    children=[
                        Resource(
                            domain="sync.targeting.unrulymedia.com",
                            path="/match",
                            rtype=ResourceType.IMAGE,
                            size=43,
                        )
                    ],
                )
            ]

        return ThirdPartyService(
            key="unruly",
            adoption=0.01,
            embed=embed,
            domains=("sync.1rx.io", "sync.targeting.unrulymedia.com"),
            rank_boost=1.8,
            tail_factor=0.3,
        )

    def _build_reddit(self) -> ThirdPartyService:
        static_cert = self.issuers.issue(DIGICERT, ("www.redditstatic.com",))
        alb_cert = self.issuers.issue(DIGICERT, ("alb.reddit.com",))
        ips = self._install_fleet(
            "FASTLY",
            {"www.redditstatic.com": static_cert, "alb.reddit.com": alb_cert},
            1,
            name="reddit-edge",
        )
        self._dns("www.redditstatic.com", ips, static=True)
        self._dns("alb.reddit.com", ips, static=True)

        def embed(rng: random.Random) -> list[Resource]:
            return [
                Resource(
                    domain="www.redditstatic.com",
                    path="/ads/pixel.js",
                    rtype=ResourceType.SCRIPT,
                    size=8_000,
                    children=[
                        Resource(
                            domain="alb.reddit.com",
                            path="/rp.gif",
                            rtype=ResourceType.IMAGE,
                            size=43,
                        )
                    ],
                )
            ]

        return ThirdPartyService(
            key="reddit-pixel",
            adoption=0.008,
            embed=embed,
            domains=("www.redditstatic.com", "alb.reddit.com"),
            rank_boost=1.2,
            tail_factor=0.5,
        )

    def _build_megacdn(self) -> ThirdPartyService:
        """A CDN that answers 421 for a coalesced-but-unserved domain.

        Exercises the paper's "explicitly excluded domains" exception:
        the wildcard certificate covers ``api.megacdn.net``, the browser
        coalesces onto the assets connection, the edge answers 421, the
        browser retries on a dedicated connection, and the classifier
        must *ignore* the domain (§4.1).
        """
        cert = self.issuers.issue(SECTIGO, ("*.megacdn.net",))
        ips = self._install_fleet(
            "CLOUDFLARENET",
            {"assets.megacdn.net": cert, "api.megacdn.net": cert},
            2,
            name="megacdn-edge",
        )
        # Config drift: one edge endpoint is not configured for the API
        # vhost, so coalesced requests landing there get 421 and the
        # browser retries on the other endpoint.
        self.servers[ips[0]].excluded_domains.add("api.megacdn.net")
        self._dns("assets.megacdn.net", ips, static=True)
        self._dns("api.megacdn.net", ips, static=True)

        def embed(rng: random.Random) -> list[Resource]:
            return [
                Resource(
                    domain="assets.megacdn.net",
                    path="/bundle.js",
                    rtype=ResourceType.SCRIPT,
                    size=150_000,
                    children=[
                        Resource(
                            domain="api.megacdn.net",
                            path="/v1/config",
                            rtype=ResourceType.XHR,
                            mode=RequestMode.NO_CORS,
                            size=700,
                        )
                    ],
                )
            ]

        return ThirdPartyService(
            key="megacdn",
            adoption=0.04,
            embed=embed,
            domains=("assets.megacdn.net", "api.megacdn.net"),
            rank_boost=1.0,
            tail_factor=0.8,
        )

    # ------------------------------------------------------------------
    # Well-configured single-domain services
    # ------------------------------------------------------------------
    #: (key, domain, provider, issuer, resource type, adoption, boost).
    #: These open exactly one well-reused connection each — the
    #: "unknown third party" mass that is not redundant (§3) and keeps
    #: the corpus' redundant-connection *share* at the paper's level.
    _CLEAN_SERVICES: tuple[
        tuple[str, str, str, str, ResourceType, float, float], ...
    ] = (
        ("consent", "cdn.consentbanner.com", "CLOUDFLARENET", DIGICERT,
         ResourceType.SCRIPT, 0.30, 1.4),
        ("jsdelivr", "cdn.jsdelivr.net", "FASTLY", SECTIGO,
         ResourceType.SCRIPT, 0.22, 1.2),
        ("cdnjs", "cdnjs.cloudflare.com", "CLOUDFLARENET", DIGICERT,
         ResourceType.SCRIPT, 0.18, 1.2),
        ("unpkg", "unpkg.com", "CLOUDFLARENET", DIGICERT,
         ResourceType.SCRIPT, 0.10, 1.1),
        ("newrelic", "js-agent.newrelic.com", "FASTLY", DIGICERT,
         ResourceType.SCRIPT, 0.12, 1.8),
        ("sentry", "browser.sentry-cdn.com", "AMAZON-02", AMAZON_CA,
         ResourceType.SCRIPT, 0.10, 1.6),
        ("stripe", "js.stripe.com", "CLOUDFLARENET", DIGICERT,
         ResourceType.SCRIPT, 0.08, 1.4),
        ("twitter", "platform.twitter.com", "EDGECAST", DIGICERT,
         ResourceType.SCRIPT, 0.10, 1.5),
        ("linkedin", "snap.licdn.com", "AKAMAI-AS", DIGICERT,
         ResourceType.SCRIPT, 0.07, 1.6),
        ("pinterest", "ct.pinterest.com", "AMAZON-02", AMAZON_CA,
         ResourceType.IMAGE, 0.06, 1.4),
        ("tiktok", "analytics.tiktok.com", "AKAMAI-ASN1", GLOBALSIGN,
         ResourceType.SCRIPT, 0.07, 1.8),
        ("yandex", "mc.yandex.ru", "AMAZON-AES", DIGICERT,
         ResourceType.SCRIPT, 0.06, 1.0),
        ("cfinsights", "static.cloudflareinsights.com", "CLOUDFLARENET",
         DIGICERT, ResourceType.SCRIPT, 0.14, 1.0),
        ("osano", "cmp.osano.com", "AMAZON-02", AMAZON_CA,
         ResourceType.SCRIPT, 0.05, 1.2),
        ("bing", "bat.bing.com", "AKAMAI-AS", MICROSOFT_CA_ISSUER,
         ResourceType.SCRIPT, 0.07, 1.5),
    )

    def _build_clean_service(
        self,
        key: str,
        domain: str,
        provider: str,
        issuer: str,
        rtype: ResourceType,
        adoption: float,
        boost: float,
    ) -> ThirdPartyService:
        cert = self.issuers.issue(issuer, (domain,))
        ips = self._install_fleet(provider, {domain: cert}, 2, name=f"{key}-edge")
        # One answer, synchronized across the pool's single salt: repeat
        # fetches always reuse — the well-behaved baseline.
        self._dns(domain, ips, answers=1, salt=domain)

        def embed(rng: random.Random) -> list[Resource]:
            return [
                Resource(
                    domain=domain,
                    path=(f"/{key}.js" if rtype is ResourceType.SCRIPT
                          else f"/{key}.gif"),
                    rtype=rtype,
                    size=rng.randint(1_000, 80_000),
                )
            ]

        return ThirdPartyService(
            key=key,
            adoption=adoption,
            embed=embed,
            domains=(domain,),
            rank_boost=boost,
            tail_factor=1.0,
        )

    # ------------------------------------------------------------------
    # Generated long tail
    # ------------------------------------------------------------------
    def _build_tail_service(self, index: int) -> ThirdPartyService:
        rng = random.Random(self.rng.random())
        kind = rng.choices(
            ["ip", "cert", "cred", "clean"], weights=[0.2, 0.03, 0.18, 0.59], k=1
        )[0]
        base = f"widget{index:03d}"
        tld = rng.choice(["net", "com", "io", "co"])
        provider = rng.choice(
            ["AMAZON-02", "CLOUDFLARENET", "FASTLY", "AKAMAI-AS",
             "AKAMAI-ASN1", "EDGECAST", "AMAZON-AES"]
        )
        issuer = rng.choices(
            [LETS_ENCRYPT, SECTIGO, GLOBALSIGN, AMAZON_CA, GODADDY, DIGICERT],
            weights=[0.45, 0.15, 0.1, 0.12, 0.08, 0.1],
            k=1,
        )[0]
        cdn = f"cdn.{base}.{tld}"
        api = f"api.{base}.{tld}"
        adoption = 0.01 + 0.22 / (1 + index * 0.35)

        if kind == "ip":
            cert = self.issuers.issue(issuer, (f"*.{base}.{tld}",))
            ips = self._install_fleet(
                provider, {cdn: cert, api: cert}, 6, name=f"{base}-edge"
            )
            self._dns(cdn, ips[:3])
            self._dns(api, ips[3:])
        elif kind == "cert":
            cdn_cert = self.issuers.issue(issuer, (cdn,))
            api_cert = self.issuers.issue(issuer, (api,))
            ips = self._install_fleet(
                provider, {cdn: cdn_cert, api: api_cert}, 1, name=f"{base}-edge"
            )
            self._dns(cdn, ips, static=True)
            self._dns(api, ips, static=True)
        else:  # cred / clean: one domain, one cert
            cert = self.issuers.issue(issuer, (f"*.{base}.{tld}",))
            ips = self._install_fleet(
                provider, {cdn: cert}, 2, name=f"{base}-edge"
            )
            self._dns(cdn, ips, answers=1)
            api = cdn

        def embed(
            rng: random.Random, *, kind=kind, cdn=cdn, api=api
        ) -> list[Resource]:
            script = Resource(
                domain=cdn,
                path="/widget.js",
                rtype=ResourceType.SCRIPT,
                size=rng.randint(5_000, 120_000),
            )
            if kind == "clean":
                return [script]
            if kind == "cred":
                # Mixed-credentials fetch to the *same* domain: the
                # dominant same-domain CRED shape of §5.3.3.
                script.children.append(
                    Resource(
                        domain=cdn,
                        path="/telemetry",
                        rtype=ResourceType.XHR,
                        mode=RequestMode.CORS_ANON,
                        size=200,
                    )
                )
                return [script]
            script.children.append(
                Resource(
                    domain=api,
                    path="/v1/data",
                    rtype=ResourceType.XHR,
                    mode=RequestMode.NO_CORS,
                    size=1_500,
                )
            )
            return [script]

        return ThirdPartyService(
            key=f"tail-{base}",
            adoption=adoption,
            embed=embed,
            domains=(cdn, api) if api != cdn else (cdn,),
            rank_boost=rng.uniform(0.8, 1.6),
        )

    # ------------------------------------------------------------------
    def build(self) -> list[ThirdPartyService]:
        """Construct the full catalogue (idempotent per instance)."""
        if self.services:
            return self.services
        builders = [
            self._build_google_analytics,
            self._build_facebook,
            self._build_google_ads,
            self._build_gstatic,
            self._build_google_fonts,
            self._build_ajax_libs,
            self._build_google_maps,
            self._build_youtube,
            self._build_hotjar,
            self._build_wordpress,
            self._build_klaviyo,
            self._build_squarespace,
            self._build_unruly,
            self._build_reddit,
            self._build_megacdn,
        ]
        self.services = [build() for build in builders]
        self.services.extend(
            self._build_clean_service(*spec) for spec in self._CLEAN_SERVICES
        )
        self.services.extend(
            self._build_tail_service(index) for index in range(self.tail_services)
        )
        return self.services
