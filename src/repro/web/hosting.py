"""Hosting providers: the glue between ASes, prefixes and servers.

Table 6 of the paper attributes IP-cause redundancy to the hosting ASes
(GOOGLE, AMAZON-02, FACEBOOK, AUTOMATTIC, ...).  A
:class:`HostingProvider` owns an AS, allocates prefixes from the global
address space, and registers everything with the AS database so the
analysis layer can do IP→AS attribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.address_space import Prefix, PrefixAllocator
from repro.net.asdb import AsDatabase, AutonomousSystem

__all__ = ["HostingProvider", "ProviderDirectory", "WELL_KNOWN_PROVIDERS"]

#: (as name, asn, organisation) — the ASes of the paper's Table 6 plus
#: generic hosters for the long tail of first-party sites.
WELL_KNOWN_PROVIDERS: tuple[tuple[str, int, str], ...] = (
    ("GOOGLE", 15169, "Google LLC"),
    ("AMAZON-02", 16509, "Amazon.com, Inc."),
    ("FACEBOOK", 32934, "Meta Platforms, Inc."),
    ("AUTOMATTIC", 2635, "Automattic, Inc"),
    ("CLOUDFLARENET", 13335, "Cloudflare, Inc."),
    ("FASTLY", 54113, "Fastly, Inc."),
    ("AMAZON-AES", 14618, "Amazon.com, Inc."),
    ("EDGECAST", 15133, "Edgecast Inc."),
    ("AKAMAI-ASN1", 20940, "Akamai International B.V."),
    ("AKAMAI-AS", 16625, "Akamai Technologies, Inc."),
    ("HETZNER-AS", 24940, "Hetzner Online GmbH"),
    ("OVH", 16276, "OVH SAS"),
    ("DIGITALOCEAN-ASN", 14061, "DigitalOcean, LLC"),
    ("LINODE-AP", 63949, "Linode, LLC"),
    ("UNIFIEDLAYER-AS-1", 46606, "Unified Layer"),
    ("GODADDY-SXB", 26496, "GoDaddy.com, LLC"),
)


@dataclass
class HostingProvider:
    """One AS's hosting operation: prefixes and address hand-out."""

    system: AutonomousSystem
    allocator: PrefixAllocator
    asdb: AsDatabase
    prefixes: list[Prefix] = field(default_factory=list)

    def new_prefix(self, prefixlen: int = 24) -> Prefix:
        """Allocate and announce a fresh prefix."""
        prefix = self.allocator.allocate_prefix(self.system.asn, prefixlen)
        self.asdb.add_prefix(prefix)
        self.prefixes.append(prefix)
        return prefix

    def addresses(self, count: int, *, prefix: Prefix | None = None) -> list[str]:
        """Allocate ``count`` host addresses (one /24 by default).

        Addresses from one call share a prefix — reproducing the paper's
        observation that a service's load-balanced endpoints sit in the
        same /24.
        """
        if prefix is None:
            prefix = self.new_prefix()
        return [self.allocator.allocate_host(prefix) for _ in range(count)]


@dataclass
class ProviderDirectory:
    """All providers of the synthetic Internet, keyed by AS name."""

    allocator: PrefixAllocator
    asdb: AsDatabase
    providers: dict[str, HostingProvider] = field(default_factory=dict)

    @classmethod
    def with_well_known(
        cls, allocator: PrefixAllocator, asdb: AsDatabase
    ) -> "ProviderDirectory":
        """Create the directory pre-populated with Table 6's ASes."""
        directory = cls(allocator=allocator, asdb=asdb)
        for name, asn, org in WELL_KNOWN_PROVIDERS:
            directory.add(name, asn, org)
        return directory

    def add(self, name: str, asn: int, organization: str) -> HostingProvider:
        system = self.asdb.register(
            AutonomousSystem(asn=asn, name=name, organization=organization)
        )
        provider = HostingProvider(
            system=system, allocator=self.allocator, asdb=self.asdb
        )
        self.providers[name] = provider
        return provider

    def __getitem__(self, name: str) -> HostingProvider:
        return self.providers[name]

    def generic_hosters(self) -> list[HostingProvider]:
        """Providers used for ordinary first-party websites."""
        names = (
            "HETZNER-AS",
            "OVH",
            "DIGITALOCEAN-ASN",
            "LINODE-AP",
            "UNIFIEDLAYER-AS-1",
            "GODADDY-SXB",
            "CLOUDFLARENET",
            "AMAZON-AES",
        )
        return [self.providers[name] for name in names if name in self.providers]
