"""Synthetic web ecosystem: resources, servers, third parties, websites."""

from repro.web.ecosystem import Ecosystem, EcosystemConfig
from repro.web.hosting import HostingProvider, ProviderDirectory, WELL_KNOWN_PROVIDERS
from repro.web.resources import RequestMode, Resource, ResourceType
from repro.web.server import OriginServer, build_fleet
from repro.web.thirdparty import ThirdPartyCatalog, ThirdPartyService
from repro.web.website import ShardingStyle, Website, WebsiteFactory

__all__ = [
    "Ecosystem",
    "EcosystemConfig",
    "HostingProvider",
    "ProviderDirectory",
    "WELL_KNOWN_PROVIDERS",
    "RequestMode",
    "Resource",
    "ResourceType",
    "OriginServer",
    "build_fleet",
    "ThirdPartyCatalog",
    "ThirdPartyService",
    "ShardingStyle",
    "Website",
    "WebsiteFactory",
]
