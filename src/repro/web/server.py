"""Origin servers.

One :class:`OriginServer` is one IP endpoint terminating TLS.  Real
servers select the presented certificate by SNI, which is how *domain
sharding with disjunct certificates on the same host* (the paper's CERT
cause) exists at all: the same IP answers ``static.klaviyo.com`` and
``fast.a.klaviyo.com`` with two different Let's Encrypt certificates.

Servers can also:

* answer **421 Misdirected Request** for domains their operator has not
  configured on this endpoint even though a certificate would cover them
  (the paper's "explicitly excluded domains" exception, filtered by the
  methodology), and
* advertise extra origins via the RFC 8336 **ORIGIN frame** (not
  honoured by Chromium, so off by default in the browser model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import TYPE_CHECKING

from repro.faults.plan import FaultKind
from repro.h2.connection import HTTP_MISDIRECTED_REQUEST
from repro.tls.certificate import Certificate, degrade_certificate
from repro.util.domains import normalize
from repro.util.rng import stable_hash

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import FaultPlan
    from repro.util.clock import SimClock

__all__ = ["FaultedEndpoint", "OriginServer", "build_fleet"]


@lru_cache(maxsize=1 << 16)
def _body_size(domain: str, path: str) -> int:
    """Deterministic response size for one URL (pure, hence memoized)."""
    return 200 + stable_hash("body", domain, path) % 50_000


@lru_cache(maxsize=1 << 14)
def _session_cookie(domain: str) -> str:
    return f"sid={stable_hash('sid', domain) % 10**9}"


@lru_cache(maxsize=1 << 16)
def _response(
    domain: str, path: str, with_cookie: bool, server_name: str
) -> tuple[int, list[tuple[str, str]], int]:
    """The 200 response for one distinct request shape (pure, memoized).

    Responses are a pure function of (domain, path, cookie?, server
    name), so the header list is built once per shape and handed out as
    the same object; callers copy what they keep (Http2Stream stores
    ``list(headers)``).  ``lru_cache`` replaces the per-server memo dict
    the pre-lint code used: ecosystem servers are shared across
    thread-executor crawl tasks, and an unguarded dict write from two
    sites hitting the same endpoint concurrently was a data race.
    """
    body_size = _body_size(domain, path)
    headers = [
        ("content-type", "application/octet-stream"),
        ("content-length", str(body_size)),
        ("server", server_name),
    ]
    if with_cookie:
        headers.append(("set-cookie", _session_cookie(domain)))
    return (200, headers, body_size)


@dataclass
class OriginServer:
    """A TLS endpoint serving one or more domains on a single IP."""

    ip: str
    name: str
    cert_map: dict[str, Certificate]
    default_certificate: Certificate
    alpn: str = "h2"
    #: Advertises HTTP/3 support via an alt-svc header; browsers with
    #: QUIC enabled switch to h3 on subsequent connections (the paper
    #: disabled QUIC precisely to avoid this, §4.2.2).
    alt_svc_h3: bool = False
    origin_frame_origins: tuple[str, ...] = ()
    excluded_domains: set[str] = field(default_factory=set)
    #: Diagnostic counters; unsynchronised, so only meaningful after
    #: single-threaded use (pool workers mutate their own copies — see
    #: the :mod:`repro.runtime` contract).
    requests_served: int = 0
    misdirected_responses: int = 0

    def __post_init__(self) -> None:
        self.cert_map = {normalize(k): v for k, v in self.cert_map.items()}
        self.excluded_domains = {normalize(d) for d in self.excluded_domains}

    # The ServerEndpoint protocol expects a ``certificate`` attribute for
    # the connection being established; SNI decides which one.
    @property
    def certificate(self) -> Certificate:
        return self.default_certificate

    def certificate_for(self, sni: str) -> Certificate:
        """The certificate presented when the client sends ``sni``."""
        sni = normalize(sni)
        if sni in self.cert_map:
            return self.cert_map[sni]
        for cert in self.cert_map.values():
            if cert.covers(sni):
                return cert
        return self.default_certificate

    def serves(self, domain: str) -> bool:
        """Is ``domain`` configured (vhosted) on this endpoint?"""
        domain = normalize(domain)
        if domain in self.excluded_domains:
            return False
        if domain in self.cert_map:
            return True
        return any(cert.covers(domain) for cert in self.cert_map.values())

    def handle_request(
        self, domain: str, path: str, *, method: str, credentials: bool
    ) -> tuple[int, list[tuple[str, str]], int]:
        """Serve a request for ``https://domain path``.

        Returns 421 when the domain reached this endpoint via connection
        coalescing but is not configured here (RFC 7540 §9.1.2).
        """
        domain = normalize(domain)
        self.requests_served += 1
        if not self.serves(domain):
            self.misdirected_responses += 1
            return (
                HTTP_MISDIRECTED_REQUEST,
                [("content-type", "text/plain"), ("content-length", "0")],
                0,
            )
        return _response(
            domain, path, credentials and method == "GET", self.name
        )

    def advertised_origins(self) -> tuple[str, ...]:
        return self.origin_frame_origins


#: Degradation modes for the TLS fault kinds, in the order the wrapper
#: consults them (one draw each per SNI).
_TLS_DEGRADATIONS: tuple[tuple[FaultKind, str], ...] = (
    (FaultKind.TLS_EXPIRED, "expired"),
    (FaultKind.TLS_SAN_MISMATCH, "san-mismatch"),
    (FaultKind.TLS_UNTRUSTED_ISSUER, "untrusted-issuer"),
)


@dataclass
class FaultedEndpoint:
    """A per-connection ``ServerEndpoint`` decorator injecting faults.

    The pool's ``server_lookup`` returns one wrapper per connection
    attempt, so per-endpoint fault state (an in-progress 5xx burst, the
    degraded-or-not certificate decision per SNI) is scoped to that
    connection and never leaks into the shared
    :class:`OriginServer` objects of the ecosystem — which other sites
    of the same study are concurrently measured against.
    """

    inner: OriginServer
    faults: "FaultPlan"
    clock: "SimClock"
    # thread-safe: one FaultedEndpoint per connection attempt (see class
    # docstring); the wrapper never outlives its visit task.
    _cert_decisions: dict[str, Certificate] = field(
        default_factory=dict, repr=False
    )
    _burst_remaining: int = 0

    @property
    def ip(self) -> str:
        return self.inner.ip

    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def alpn(self) -> str:
        return self.inner.alpn

    @property
    def alt_svc_h3(self) -> bool:
        return self.inner.alt_svc_h3

    @property
    def certificate(self) -> Certificate:
        return self.inner.certificate

    def certificate_for(self, sni: str) -> Certificate:
        """The (possibly degraded) certificate presented for ``sni``.

        The degradation decision is drawn once per SNI and cached, so
        the certificate the pool verifies at handshake time is the same
        object the established connection records.
        """
        cached = self._cert_decisions.get(sni)
        if cached is not None:
            return cached
        certificate = self.inner.certificate_for(sni)
        for kind, mode in _TLS_DEGRADATIONS:
            if self.faults.fires(kind):
                certificate = degrade_certificate(
                    certificate, mode, now=self.clock.now()
                )
                break
        self._cert_decisions[sni] = certificate
        return certificate

    def serves(self, domain: str) -> bool:
        return self.inner.serves(domain)

    def handle_request(
        self, domain: str, path: str, *, method: str, credentials: bool
    ) -> tuple[int, list[tuple[str, str]], int]:
        """Serve via the real endpoint, then maybe break the response.

        5xx faults arrive in bursts (one draw arms ``param`` consecutive
        503s, modelling an origin briefly falling over); truncation cuts
        the delivered body to ``param`` of its announced length while
        the headers keep advertising the full content-length — the §4.3
        logging-inconsistency shape, server-made.
        """
        status, headers, body_size = self.inner.handle_request(
            domain, path, method=method, credentials=credentials
        )
        if status != 200:
            return status, headers, body_size
        if self._burst_remaining > 0:
            self._burst_remaining -= 1
            return self._unavailable()
        if self.faults.fires(FaultKind.SRV_ERROR_BURST):
            self._burst_remaining = max(
                0, int(self.faults.param(FaultKind.SRV_ERROR_BURST, 1.0)) - 1
            )
            return self._unavailable()
        if self.faults.fires(FaultKind.SRV_TRUNCATED_BODY):
            factor = self.faults.param(FaultKind.SRV_TRUNCATED_BODY, 0.25)
            return status, headers, int(body_size * factor)
        return status, headers, body_size

    @staticmethod
    def _unavailable() -> tuple[int, list[tuple[str, str]], int]:
        return (
            503,
            [("content-type", "text/plain"), ("content-length", "0"),
             ("retry-after", "1")],
            0,
        )

    def advertised_origins(self) -> tuple[str, ...]:
        return self.inner.advertised_origins()


def build_fleet(
    ips: list[str],
    *,
    name: str,
    cert_map: dict[str, Certificate],
    default_certificate: Certificate | None = None,
    alpn: str = "h2",
    alt_svc_h3: bool = False,
    origin_frame_origins: tuple[str, ...] = (),
    excluded_domains: set[str] | None = None,
) -> list[OriginServer]:
    """Create one interchangeable server per IP with shared config.

    This models a load-balanced service: every endpoint can answer for
    every configured domain, which is precisely why the paper argues the
    redundant connections of cause IP were avoidable.
    """
    if default_certificate is None:
        if not cert_map:
            raise ValueError("fleet needs at least one certificate")
        default_certificate = next(iter(cert_map.values()))
    return [
        OriginServer(
            ip=ip,
            name=name,
            cert_map=dict(cert_map),
            default_certificate=default_certificate,
            alpn=alpn,
            alt_svc_h3=alt_svc_h3,
            origin_frame_origins=origin_frame_origins,
            excluded_domains=set(excluded_domains or ()),
        )
        for ip in ips
    ]
