"""Origin servers.

One :class:`OriginServer` is one IP endpoint terminating TLS.  Real
servers select the presented certificate by SNI, which is how *domain
sharding with disjunct certificates on the same host* (the paper's CERT
cause) exists at all: the same IP answers ``static.klaviyo.com`` and
``fast.a.klaviyo.com`` with two different Let's Encrypt certificates.

Servers can also:

* answer **421 Misdirected Request** for domains their operator has not
  configured on this endpoint even though a certificate would cover them
  (the paper's "explicitly excluded domains" exception, filtered by the
  methodology), and
* advertise extra origins via the RFC 8336 **ORIGIN frame** (not
  honoured by Chromium, so off by default in the browser model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.h2.connection import HTTP_MISDIRECTED_REQUEST
from repro.tls.certificate import Certificate
from repro.util.domains import normalize
from repro.util.rng import stable_hash

__all__ = ["OriginServer", "build_fleet"]


@lru_cache(maxsize=1 << 16)
def _body_size(domain: str, path: str) -> int:
    """Deterministic response size for one URL (pure, hence memoized)."""
    return 200 + stable_hash("body", domain, path) % 50_000


@lru_cache(maxsize=1 << 14)
def _session_cookie(domain: str) -> str:
    return f"sid={stable_hash('sid', domain) % 10**9}"


@dataclass
class OriginServer:
    """A TLS endpoint serving one or more domains on a single IP."""

    ip: str
    name: str
    cert_map: dict[str, Certificate]
    default_certificate: Certificate
    alpn: str = "h2"
    #: Advertises HTTP/3 support via an alt-svc header; browsers with
    #: QUIC enabled switch to h3 on subsequent connections (the paper
    #: disabled QUIC precisely to avoid this, §4.2.2).
    alt_svc_h3: bool = False
    origin_frame_origins: tuple[str, ...] = ()
    excluded_domains: set[str] = field(default_factory=set)
    #: Diagnostic counters; unsynchronised, so only meaningful after
    #: single-threaded use (pool workers mutate their own copies — see
    #: the :mod:`repro.runtime` contract).
    requests_served: int = 0
    misdirected_responses: int = 0
    _response_cache: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self.cert_map = {normalize(k): v for k, v in self.cert_map.items()}
        self.excluded_domains = {normalize(d) for d in self.excluded_domains}

    # The ServerEndpoint protocol expects a ``certificate`` attribute for
    # the connection being established; SNI decides which one.
    @property
    def certificate(self) -> Certificate:
        return self.default_certificate

    def certificate_for(self, sni: str) -> Certificate:
        """The certificate presented when the client sends ``sni``."""
        sni = normalize(sni)
        if sni in self.cert_map:
            return self.cert_map[sni]
        for cert in self.cert_map.values():
            if cert.covers(sni):
                return cert
        return self.default_certificate

    def serves(self, domain: str) -> bool:
        """Is ``domain`` configured (vhosted) on this endpoint?"""
        domain = normalize(domain)
        if domain in self.excluded_domains:
            return False
        if domain in self.cert_map:
            return True
        return any(cert.covers(domain) for cert in self.cert_map.values())

    def handle_request(
        self, domain: str, path: str, *, method: str, credentials: bool
    ) -> tuple[int, list[tuple[str, str]], int]:
        """Serve a request for ``https://domain path``.

        Returns 421 when the domain reached this endpoint via connection
        coalescing but is not configured here (RFC 7540 §9.1.2).
        """
        domain = normalize(domain)
        self.requests_served += 1
        if not self.serves(domain):
            self.misdirected_responses += 1
            return (
                HTTP_MISDIRECTED_REQUEST,
                [("content-type", "text/plain"), ("content-length", "0")],
                0,
            )
        # Responses are a pure function of (domain, path, cookie?), so
        # the header list is built once per distinct request shape and
        # handed out as the same object; callers copy what they keep
        # (Http2Stream stores list(headers)).
        key = (domain, path, credentials and method == "GET")
        cached = self._response_cache.get(key)
        if cached is None:
            body_size = _body_size(domain, path)
            headers = [
                ("content-type", "application/octet-stream"),
                ("content-length", str(body_size)),
                ("server", self.name),
            ]
            if key[2]:
                headers.append(("set-cookie", _session_cookie(domain)))
            cached = (200, headers, body_size)
            self._response_cache[key] = cached
        return cached

    def advertised_origins(self) -> tuple[str, ...]:
        return self.origin_frame_origins


def build_fleet(
    ips: list[str],
    *,
    name: str,
    cert_map: dict[str, Certificate],
    default_certificate: Certificate | None = None,
    alpn: str = "h2",
    alt_svc_h3: bool = False,
    origin_frame_origins: tuple[str, ...] = (),
    excluded_domains: set[str] | None = None,
) -> list[OriginServer]:
    """Create one interchangeable server per IP with shared config.

    This models a load-balanced service: every endpoint can answer for
    every configured domain, which is precisely why the paper argues the
    redundant connections of cause IP were avoidable.
    """
    if default_certificate is None:
        if not cert_map:
            raise ValueError("fleet needs at least one certificate")
        default_certificate = next(iter(cert_map.values()))
    return [
        OriginServer(
            ip=ip,
            name=name,
            cert_map=dict(cert_map),
            default_certificate=default_certificate,
            alpn=alpn,
            alt_svc_h3=alt_svc_h3,
            origin_frame_origins=origin_frame_origins,
            excluded_domains=set(excluded_domains or ()),
        )
        for ip in ips
    ]
