"""Resources and page trees.

A page is a tree: the document references resources, and resources
(scripts, mostly) can reference further resources once they execute —
the paper's motivating chains are exactly such trees, e.g. the
``googletagmanager.com`` script that "downloads a script from
``google-analytics.com``, loading further resources" (§5.3.1).

Each resource carries the *request mode* the browser will fetch it with.
The mode, together with the origin relationship, determines whether the
Fetch Standard lets the request carry credentials — which is the whole
CRED story (§3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterator

from repro.util.domains import is_valid_hostname, normalize

__all__ = ["ResourceType", "RequestMode", "Resource"]


@lru_cache(maxsize=1 << 16)
def _validated_domain(domain: str) -> str:
    """Normalise and validate a resource domain (memoized, pure)."""
    normalized = normalize(domain)
    if not is_valid_hostname(normalized):
        raise ValueError(f"invalid resource domain: {normalized!r}")
    return normalized


class ResourceType(enum.Enum):
    """What kind of content a resource is (drives sizes and modes)."""

    DOCUMENT = "document"
    SCRIPT = "script"
    STYLESHEET = "stylesheet"
    IMAGE = "image"
    FONT = "font"
    XHR = "xhr"
    BEACON = "beacon"
    MEDIA = "media"
    IFRAME = "iframe"


class RequestMode(enum.Enum):
    """Simplified WHATWG Fetch request mode + credentials mode.

    * ``NAVIGATE`` — top-level document loads; always credentialed.
    * ``NO_CORS`` — classic scripts, images, stylesheets without a
      ``crossorigin`` attribute; requests include credentials.
    * ``CORS_ANON`` — CORS requests with credentials mode
      "same-origin": fonts, ES modules, ``crossorigin=anonymous``
      elements, plain ``fetch()``.  Cross-origin requests omit
      credentials, which flips Chromium's ``privacy_mode`` and
      partitions the connection pool.
    * ``CORS_CREDENTIALED`` — CORS with credentials mode "include"
      (``withCredentials`` XHR, ``fetch(..., credentials:'include')``).
    """

    NAVIGATE = "navigate"
    NO_CORS = "no-cors"
    CORS_ANON = "cors-anonymous"
    CORS_CREDENTIALED = "cors-credentialed"


#: Default request mode per resource type, matching how browsers load
#: markup without explicit crossorigin attributes.
_DEFAULT_MODES: dict[ResourceType, RequestMode] = {
    ResourceType.DOCUMENT: RequestMode.NAVIGATE,
    ResourceType.SCRIPT: RequestMode.NO_CORS,
    ResourceType.STYLESHEET: RequestMode.NO_CORS,
    ResourceType.IMAGE: RequestMode.NO_CORS,
    ResourceType.FONT: RequestMode.CORS_ANON,
    ResourceType.XHR: RequestMode.CORS_ANON,
    ResourceType.BEACON: RequestMode.NO_CORS,
    ResourceType.MEDIA: RequestMode.NO_CORS,
    ResourceType.IFRAME: RequestMode.NAVIGATE,
}


@dataclass
class Resource:
    """One fetchable resource plus the resources it triggers."""

    domain: str
    path: str
    rtype: ResourceType
    mode: RequestMode | None = None
    size: int = 1024
    children: list["Resource"] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.domain = _validated_domain(self.domain)
        if not self.path.startswith("/"):
            raise ValueError(f"resource path must start with '/': {self.path!r}")
        if self.mode is None:
            self.mode = _DEFAULT_MODES[self.rtype]
        if self.size < 0:
            raise ValueError(f"negative resource size: {self.size}")

    @property
    def url(self) -> str:
        return f"https://{self.domain}{self.path}"

    def walk(self) -> Iterator["Resource"]:
        """Yield this resource and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def count(self) -> int:
        """Total number of resources in the subtree."""
        return sum(1 for _ in self.walk())

    def domains(self) -> set[str]:
        """All distinct domains referenced in the subtree."""
        return {resource.domain for resource in self.walk()}
