"""The synthetic web: everything the crawlers visit.

`Ecosystem.generate` builds, from one seed, a complete and internally
consistent world: autonomous systems and prefixes, origin servers with
SNI certificate maps, an authoritative DNS namespace with per-domain
load balancing, the third-party service catalogue, and N first-party
websites with popularity ranks and embedded services.

This replaces the live web of the paper's measurements; see DESIGN.md
§1 for the substitution argument.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.dns.resolver import RecursiveResolver, ResolverInfo
from repro.dns.zone import DnsNamespace
from repro.net.address_space import PrefixAllocator
from repro.net.asdb import AsDatabase
from repro.tls.issuers import IssuerRegistry
from repro.util.rng import RngFactory
from repro.web.hosting import ProviderDirectory
from repro.web.server import OriginServer
from repro.web.thirdparty import ThirdPartyCatalog, ThirdPartyService
from repro.web.website import Website, WebsiteFactory

__all__ = ["EcosystemConfig", "Ecosystem"]


def _build_internal_pages(site, services, config, rng: random.Random) -> None:
    """Attach internal pages that keep a subset of the landing embeds."""
    from repro.web.resources import Resource, ResourceType

    by_key = {service.key: service for service in services}
    kept_keys = [
        key for key in site.embedded_services
        if rng.random() < config.internal_embed_retention
    ]
    for index in range(config.internal_pages_per_site):
        path = f"/page/{index + 1}"
        children = [
            Resource(
                domain=site.domain,
                path=f"{path}/asset-{item}",
                rtype=ResourceType.IMAGE if item % 2 else ResourceType.SCRIPT,
                size=rng.randint(500, 80_000),
            )
            for item in range(rng.randint(2, 8))
        ]
        for key in kept_keys:
            children.extend(by_key[key].embed(random.Random(rng.random())))
        site.internal_documents[path] = Resource(
            domain=site.domain,
            path=path,
            rtype=ResourceType.DOCUMENT,
            size=rng.randint(4_000, 90_000),
            children=children,
        )

#: Domain rewrites applied by a browser crawling from a given country —
#: the paper's geolocation effect ("our geolocation seems to affect
#: Google to redirect us to its German domain", Appendix A.3).
_GEO_REWRITES: dict[str, dict[str, str]] = {
    "DE": {
        "www.google.com": "www.google.de",
        "adservice.google.com": "adservice.google.de",
    },
}


@dataclass(frozen=True)
class EcosystemConfig:
    """Knobs of the synthetic world.

    The defaults are calibrated so corpus-level shares reproduce the
    paper's Table 1 shape (see DESIGN.md §4); sizes are scaled down from
    6.24 M / 100 k sites to something a laptop regenerates in seconds.
    """

    seed: int = 7
    n_sites: int = 2000
    tail_services: int = 60
    share_sharded: float = 0.45
    share_h1_only: float = 0.06
    #: Probability that an HTTP/1-only first party still carries
    #: third-party embeds (old sites have fewer trackers).
    h1_embed_damping: float = 0.5
    shard_font_probability: float = 0.35
    style_weights: tuple[float, float, float] = (0.64, 0.06, 0.30)
    #: Internal pages per site (extension beyond the paper's
    #: landing-page-only crawls).
    internal_pages_per_site: int = 2
    #: Probability each landing-page third party also appears on an
    #: internal page (internal pages are lighter, Aqeel et al. [1]).
    internal_embed_retention: float = 0.7
    # ---- mitigation ablations (§5.3.1 / conclusion) ------------------
    #: Servers advertise their reusable origins via RFC 8336 ORIGIN
    #: frames (pair with BrowserConfig.honor_origin_frame).
    advertise_origin_frames: bool = False
    #: Services coordinate DNS so coalescable domains resolve to the
    #: same answers (the paper's "point to the same CNAME" fix).
    coalesce_friendly_dns: bool = False
    #: Sharding operators merge their per-shard certificates into one
    #: (the certbot-education fix for the CERT cause).
    merged_certificates: bool = False
    # ---- temporal evolution (see repro.evolve) -----------------------
    #: Named churn policy evolving the world across epochs; ``"none"``
    #: applies no mutation at all (the hooks are provably inert).
    evolution_policy: str = "none"
    #: How many churn epochs have been applied to this world; 0 is the
    #: pristine just-generated state every pre-evolution study measured.
    epoch: int = 0
    # ---- HTTP/3 rollout (see repro.h3) -------------------------------
    #: Named alt-svc adoption profile deciding which origin fleets and
    #: third-party providers advertise ``h3``; ``"none"`` compiles to
    #: no plan at all (the hook is provably inert).
    h3_profile: str = "none"


@dataclass
class Ecosystem:
    """The fully wired synthetic Internet."""

    config: EcosystemConfig
    namespace: DnsNamespace
    asdb: AsDatabase
    allocator: PrefixAllocator
    providers: ProviderDirectory
    issuers: IssuerRegistry
    servers: dict[str, OriginServer]
    services: list[ThirdPartyService]
    websites: list[Website]
    _by_domain: dict[str, Website] = field(default_factory=dict)
    _by_rank: list[Website] | None = field(default=None, repr=False)
    # thread-safe: httparchive_sample is called only while planning
    # crawls on the coordinating thread, before tasks fan out.
    _ha_samples: dict[tuple[float, int], list[str]] = field(
        default_factory=dict, repr=False
    )
    #: One ``(epoch, ((kind, count), ...))`` entry per applied churn
    #: epoch; empty for pristine worlds.  Rebuilt identically inside
    #: every process worker, so the longitudinal report can render it.
    evolution_ledger: tuple[tuple[int, tuple[tuple[str, int], ...]], ...] = ()
    #: One ``(epoch, (name, ...))`` entry per applied churn epoch: the
    #: sorted names each epoch mutated.  Site-attributable churn is
    #: normalised to the owning root domain; names that are not site
    #: roots (shared third-party service entries) stay raw and dirty
    #: *every* site's measurements.  Drives per-shard cache
    #: invalidation via :meth:`evolution_token`.
    evolution_touched: tuple[tuple[int, tuple[str, ...]], ...] = ()

    @classmethod
    def generate(cls, config: EcosystemConfig | None = None) -> "Ecosystem":
        """Build the world deterministically from ``config.seed``."""
        config = config or EcosystemConfig()
        rng = RngFactory(config.seed)
        namespace = DnsNamespace()
        asdb = AsDatabase()
        allocator = PrefixAllocator()
        providers = ProviderDirectory.with_well_known(allocator, asdb)
        issuers = IssuerRegistry()
        servers: dict[str, OriginServer] = {}

        catalog = ThirdPartyCatalog(
            providers=providers,
            namespace=namespace,
            issuers=issuers,
            servers=servers,
            rng=rng.stream("thirdparty"),
            tail_services=config.tail_services,
            advertise_origin_frames=config.advertise_origin_frames,
            coalesce_friendly_dns=config.coalesce_friendly_dns,
            merged_certificates=config.merged_certificates,
        )
        services = catalog.build()

        factory = WebsiteFactory(
            providers=providers,
            namespace=namespace,
            issuers=issuers,
            servers=servers,
            rng=rng.stream("websites"),
            share_sharded=config.share_sharded,
            share_h1_only=config.share_h1_only,
            shard_font_probability=config.shard_font_probability,
            style_weights=config.style_weights,
            merged_certificates=config.merged_certificates,
        )

        websites: list[Website] = []
        embed_rng = rng.stream("embeds")
        for rank in range(1, config.n_sites + 1):
            site = factory.build_site(rank)
            percentile = (rank - 1) / max(1, config.n_sites - 1)
            damping = 1.0
            if not site.supports_h2:
                damping = config.h1_embed_damping
            embedded = []
            for service in services:
                probability = service.effective_adoption(percentile) * damping
                if embed_rng.random() < probability:
                    site.document.children.extend(
                        service.embed(random.Random(embed_rng.random()))
                    )
                    embedded.append(service.key)
            site.embedded_services = tuple(embedded)
            _build_internal_pages(site, services, config, embed_rng)
            websites.append(site)

        ecosystem = cls(
            config=config,
            namespace=namespace,
            asdb=asdb,
            allocator=allocator,
            providers=providers,
            issuers=issuers,
            servers=servers,
            services=services,
            websites=websites,
        )
        ecosystem._by_domain = {site.domain: site for site in websites}
        if config.h3_profile != "none":
            # Imported lazily for the same layering reason as evolve
            # below; applied before churn so an h3-rollout policy can
            # extend an already-adopted world.
            from repro.h3.plan import apply_h3_adoption

            apply_h3_adoption(ecosystem)
        if config.epoch > 0 and config.evolution_policy != "none":
            # Imported lazily: repro.evolve sits above the web layer and
            # is only needed for worlds that actually evolve.
            from repro.evolve.engine import evolve_ecosystem

            evolve_ecosystem(ecosystem)
        return ecosystem

    # ------------------------------------------------------------------
    def server_for_ip(self, ip: str) -> OriginServer:
        """The endpoint listening on ``ip`` (KeyError if none)."""
        return self.servers[ip]

    def website(self, domain: str) -> Website | None:
        return self._by_domain.get(domain)

    def make_resolver(self, resolver_id: str = "internal") -> RecursiveResolver:
        """A fresh recursive resolver over this world's namespace."""
        info = ResolverInfo(
            resolver_id=resolver_id, ip="0.0.0.0", country="n/a", operator="sim"
        )
        return RecursiveResolver(namespace=self.namespace, info=info)

    def geo_rewrites(self, country: str) -> dict[str, str]:
        """Vantage-dependent domain rewrites for a crawler in ``country``."""
        return dict(_GEO_REWRITES.get(country.upper(), {}))

    # ------------------------------------------------------------------
    # Evolution hooks (driven by repro.evolve.engine)
    #
    # Each hook is one primitive ecosystem mutation — SAN-set edits,
    # IP-pool repointing, fleet migration, ORIGIN-frame flips.  They are
    # deliberately dumb: all policy (what mutates, how often, with which
    # RNG stream) lives in the engine, so the hooks stay reusable for
    # future scenario axes.
    # ------------------------------------------------------------------
    def dns_pool(self, domain: str) -> tuple[str, ...]:
        """The address pool ``domain`` currently resolves from.

        Follows at most one CNAME hop (the only alias depth the
        generator mints); unknown names yield an empty tuple.
        """
        from repro.dns.zone import AddressEntry, AliasEntry

        entry = self.namespace.entry(domain)
        if isinstance(entry, AliasEntry):
            entry = self.namespace.entry(entry.target)
        if isinstance(entry, AddressEntry):
            return entry.pool
        return ()

    def repoint_dns(
        self,
        domain: str,
        *,
        pool: tuple[str, ...] | None = None,
        salt: str | None | type(...) = ...,
    ) -> bool:
        """Rewrite ``domain``'s address entry, preserving policy and TTL.

        ``pool`` replaces the answer pool; ``salt`` (when passed)
        replaces the balancing salt.  Returns ``False`` for names
        without a direct address entry (aliases are left alone).
        """
        from repro.dns.zone import AddressEntry

        entry = self.namespace.entry(domain)
        if not isinstance(entry, AddressEntry):
            return False
        self.namespace.add_address(
            domain,
            AddressEntry(
                pool=entry.pool if pool is None else tuple(pool),
                policy=entry.policy,
                ttl=entry.ttl,
                salt=entry.salt if salt is ... else salt,
            ),
        )
        return True

    def fleet_for(self, domains: list[str]) -> list[OriginServer]:
        """The distinct servers behind ``domains``, in pool order."""
        seen: dict[str, OriginServer] = {}
        for domain in domains:
            for ip in self.dns_pool(domain):
                server = self.servers.get(ip)
                if server is not None and ip not in seen:
                    seen[ip] = server
        return list(seen.values())

    def swap_certificates(
        self, servers: list[OriginServer], mapping: dict[str, "Certificate"]
    ) -> int:
        """Replace certificates on ``servers`` by fingerprint.

        ``mapping`` maps an old certificate's fingerprint to its
        replacement; every ``cert_map`` slot and default certificate
        matching a fingerprint is swapped.  Returns the slot count.
        """
        swapped = 0
        for server in servers:
            for sni, certificate in server.cert_map.items():
                replacement = mapping.get(certificate.fingerprint)
                if replacement is not None:
                    server.cert_map[sni] = replacement
                    swapped += 1
            replacement = mapping.get(server.default_certificate.fingerprint)
            if replacement is not None:
                server.default_certificate = replacement
        return swapped

    def migrate_fleet(
        self, domains: list[str], provider: "HostingProvider"
    ) -> dict[str, str]:
        """Move the fleet behind ``domains`` onto fresh ``provider`` IPs.

        Allocates one new address per distinct old endpoint, installs
        configuration-identical servers there, repoints every domain's
        pool positionally, and decommissions the old endpoints.
        Returns the old-to-new address mapping.
        """
        old_servers = self.fleet_for(domains)
        if not old_servers:
            return {}
        new_ips = provider.addresses(len(old_servers))
        moves: dict[str, str] = {}
        for old, ip in zip(old_servers, new_ips):
            moves[old.ip] = ip
            self.servers[ip] = OriginServer(
                ip=ip,
                name=old.name,
                cert_map=dict(old.cert_map),
                default_certificate=old.default_certificate,
                alpn=old.alpn,
                alt_svc_h3=old.alt_svc_h3,
                origin_frame_origins=old.origin_frame_origins,
                excluded_domains=set(old.excluded_domains),
            )
        for domain in domains:
            pool = self.dns_pool(domain)
            if pool:
                self.repoint_dns(
                    domain, pool=tuple(moves.get(ip, ip) for ip in pool)
                )
        for old_ip in moves:
            del self.servers[old_ip]
        return moves

    def set_origin_frames(
        self, servers: list[OriginServer], advertise: bool
    ) -> None:
        """Toggle RFC 8336 ORIGIN-frame advertisement on ``servers``.

        When enabling, each endpoint advertises every non-excluded
        domain of its certificate map (the generator's own convention).
        Only measured by browsers with ``honor_origin_frame`` set.
        """
        for server in servers:
            if not advertise:
                server.origin_frame_origins = ()
                continue
            server.origin_frame_origins = tuple(
                f"https://{domain}"
                for domain in server.cert_map
                if domain not in server.excluded_domains
            )

    def affected_epochs(self, domains: Sequence[str]) -> tuple[int, ...]:
        """The applied epochs whose churn can alter measurements of
        ``domains``.

        An epoch affects the set when it touched one of the domains
        directly, or when it touched a name that is not a site root —
        shared third-party service entries are embedded by arbitrary
        sites, so churn there conservatively dirties everyone.
        """
        wanted = frozenset(domains)
        roots = frozenset(self._by_domain)
        affected = []
        for epoch, touched in self.evolution_touched:
            for name in touched:
                if name in wanted or name not in roots:
                    affected.append(epoch)
                    break
        return tuple(affected)

    def evolution_token(self, domains: Sequence[str]) -> tuple:
        """The evolution-history component of a per-shard cache key.

        ``()`` when no applied epoch touched ``domains`` — making the
        key equal to the pristine world's, so an epoch-N+1 study reuses
        epoch-N (or epoch-0) shard artefacts untouched by the ledger.
        Otherwise the policy name plus the affected epoch numbers: any
        churn that could change these domains' measurements changes
        the token, and with it the key.
        """
        affected = self.affected_epochs(domains)
        if not affected:
            return ()
        return (self.config.evolution_policy, affected)

    def cache_world_key(self, domains: Sequence[str]) -> tuple:
        """The world-identity part of a stage key for ``domains``.

        The base (pristine) config plus the domains' evolution token,
        instead of the raw config: two worlds differing only in epochs
        whose churn never touched ``domains`` produce equal keys, which
        is exactly the sharing per-shard incremental recompute needs.
        """
        base = dataclasses.replace(
            self.config, evolution_policy="none", epoch=0
        )
        return (base, self.evolution_token(domains))

    def alexa_list(self, top: int) -> list[str]:
        """The top-``top`` site domains by rank (the synthetic Alexa list)."""
        # The rank order never changes once generated; sweeps share one
        # ecosystem across many cells, so sort once and slice per call.
        if self._by_rank is None:
            self._by_rank = sorted(self.websites, key=lambda site: site.rank)
        return [site.domain for site in self._by_rank[:top]]

    def httparchive_sample(self, share: float = 0.75, *, seed: int = 1) -> list[str]:
        """A deterministic sample of sites (the synthetic CrUX corpus).

        Pure in (share, seed) for a generated world, so repeated calls
        (every sweep cell re-plans its crawl) reuse the first draw.
        """
        if not 0 < share <= 1:
            raise ValueError(f"share must be in (0, 1], got {share}")
        cached = self._ha_samples.get((share, seed))
        if cached is None:
            rng = random.Random(seed)
            cached = [
                site.domain for site in self.websites if rng.random() < share
            ]
            self._ha_samples[(share, seed)] = cached
        return list(cached)
