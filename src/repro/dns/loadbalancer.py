"""Authoritative-side load-balancing policies.

The paper attributes the dominant cause of redundant connections (cause
*IP*) to **unsynchronized DNS load balancing**: two domains of the same
service (e.g. ``www.googletagmanager.com`` and
``www.google-analytics.com``) are balanced independently over a shared
server pool, so a client usually receives *different* IPs for them even
though either server could have answered for both (§5.3.1, Appendix A.4).

Policies here decide which addresses of a pool an authoritative zone
returns for a query, as a pure function of ``(salt, time slot, resolver
identity)`` — deterministic, so studies are reproducible, yet exhibiting
exactly the temporal/spatial fluctuation of Figure 3:

* :class:`StaticPolicy` — always the full pool in fixed order (no LB).
* :class:`RotationPolicy` — returns ``answer_count`` addresses starting
  at a pseudo-random offset that changes every ``period_s`` seconds and
  differs per resolver.  Two domains sharing a pool but using different
  ``salt`` values are *unsynchronized*; giving them the same ``salt``
  models the paper's proposed mitigation (shared CNAME / coordinated LB).
* :class:`AnycastPolicy` — one stable virtual IP for every query, the
  "Anycast CDN" mitigation of §5.3.1.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Protocol, Sequence

from repro.dns.records import Answer
from repro.util.rng import stable_hash

__all__ = [
    "LoadBalancingPolicy",
    "StaticPolicy",
    "RotationPolicy",
    "AnycastPolicy",
    "narrow_answer",
]


def narrow_answer(answer: Answer, *, keep: int = 1) -> Answer:
    """A degraded balancer's answer: only the first ``keep`` A records.

    Models a pool that is partially drained (maintenance, a regional
    outage) so the balancer serves fewer addresses than it owns.  Fewer
    answers mean fewer coalescing opportunities for the browser pool —
    the fault-injection lever behind ``FaultKind.DNS_NARROWED``.  Answer
    order is preserved, so the surviving records are exactly the ones
    every vantage point agrees on first.
    """
    keep = max(1, keep)
    if len(answer.ips) <= keep:
        return answer
    return replace(answer, ips=tuple(answer.ips[:keep]))


@lru_cache(maxsize=1 << 16)
def _rotation_hash(salt: str, slot: int, vantage: str) -> int:
    """The BLAKE2b rotation hash, memoized per (salt, slot, vantage).

    Every resolver re-asks the same names within one rotation slot
    (TTLs are shorter than periods), so identical hashes recur heavily
    in the DNS study's long simulated horizon.
    """
    return stable_hash("rotation", salt, slot, vantage)


class LoadBalancingPolicy(Protocol):
    """Strategy choosing the answer set for one query."""

    def select(
        self, pool: Sequence[str], *, salt: str, now: float, resolver_id: str
    ) -> tuple[str, ...]:
        """Return the A records to serve, in answer order."""
        ...


@dataclass(frozen=True)
class StaticPolicy:
    """No balancing: the whole pool, in pool order."""

    def select(
        self, pool: Sequence[str], *, salt: str, now: float, resolver_id: str
    ) -> tuple[str, ...]:
        return tuple(pool)


@dataclass(frozen=True)
class RotationPolicy:
    """Time- and vantage-dependent rotation over the pool.

    ``answer_count`` addresses are taken from the pool starting at an
    offset derived from ``(salt, slot, resolver_id)``.  With
    ``per_resolver=False`` all resolvers in a slot agree (purely temporal
    rotation); the default also varies across resolvers, which is what
    the paper observed across its 14 vantage points.
    """

    answer_count: int = 1
    period_s: float = 360.0
    per_resolver: bool = True

    def __post_init__(self) -> None:
        if self.answer_count < 1:
            raise ValueError("answer_count must be >= 1")
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")

    def select(
        self, pool: Sequence[str], *, salt: str, now: float, resolver_id: str
    ) -> tuple[str, ...]:
        if not pool:
            return ()
        size = len(pool)
        slot = int(now // self.period_s)
        vantage = resolver_id if self.per_resolver else ""
        offset = _rotation_hash(salt, slot, vantage) % size
        count = min(self.answer_count, size)
        end = offset + count
        if end <= size:  # wrap-free slice (the common case)
            return tuple(pool[offset:end])
        return tuple(pool[offset:]) + tuple(pool[:end - size])


@dataclass(frozen=True)
class AnycastPolicy:
    """Every query sees the same single (virtual) address: pool[0]."""

    def select(
        self, pool: Sequence[str], *, salt: str, now: float, resolver_id: str
    ) -> tuple[str, ...]:
        if not pool:
            return ()
        return (pool[0],)
