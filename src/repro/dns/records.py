"""DNS record model.

Only the record types the reproduction needs: ``A`` (host addresses) and
``CNAME`` (aliases, used by the paper's proposed mitigation of pointing
shards at a shared CNAME).  Records carry TTLs so the recursive
resolver's cache behaves realistically — cache lifetime is one of the
two levers behind the paper's "unsynchronized DNS load balancing"
finding (the other is the authoritative rotation itself).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.util.domains import is_valid_hostname, normalize

__all__ = ["RecordType", "Answer", "DEFAULT_TTL"]

#: Default TTL for synthetic records (seconds).  Short, as is typical for
#: load-balanced CDN names.
DEFAULT_TTL = 300


class RecordType(enum.Enum):
    """Supported DNS record types."""

    A = "A"
    CNAME = "CNAME"


@dataclass(frozen=True)
class Answer:
    """The result of resolving a hostname.

    ``ips`` is the ordered list of A records returned for this query;
    ``cname_chain`` records any aliases traversed on the way (first
    element is the query name's target); ``ttl`` is the minimum TTL along
    the chain, i.e. how long a cache may serve this answer.
    """

    name: str
    ips: tuple[str, ...]
    ttl: int = DEFAULT_TTL
    cname_chain: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", normalize(self.name))
        if not is_valid_hostname(self.name):
            raise ValueError(f"invalid hostname in answer: {self.name!r}")
        if self.ttl < 0:
            raise ValueError(f"negative TTL: {self.ttl}")

    @property
    def canonical_name(self) -> str:
        """The final name after following all CNAMEs."""
        return self.cname_chain[-1] if self.cname_chain else self.name

    @property
    def primary_ip(self) -> str:
        """The address a client will connect to first."""
        if not self.ips:
            raise ValueError(f"answer for {self.name} has no addresses")
        return self.ips[0]
