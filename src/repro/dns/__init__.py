"""DNS substrate: records, load balancing, authoritative namespace, resolvers."""

from repro.dns.loadbalancer import (
    AnycastPolicy,
    LoadBalancingPolicy,
    RotationPolicy,
    StaticPolicy,
)
from repro.dns.records import DEFAULT_TTL, Answer, RecordType
from repro.dns.resolver import RecursiveResolver, ResolverInfo, default_fleet
from repro.dns.zone import AddressEntry, AliasEntry, DnsNamespace, NxDomain

__all__ = [
    "AnycastPolicy",
    "LoadBalancingPolicy",
    "RotationPolicy",
    "StaticPolicy",
    "DEFAULT_TTL",
    "Answer",
    "RecordType",
    "RecursiveResolver",
    "ResolverInfo",
    "default_fleet",
    "AddressEntry",
    "AliasEntry",
    "DnsNamespace",
    "NxDomain",
]
