"""DNS substrate: records, load balancing, authoritative namespace, resolvers."""

from repro.dns.loadbalancer import (
    AnycastPolicy,
    LoadBalancingPolicy,
    RotationPolicy,
    StaticPolicy,
)
from repro.dns.errors import DnsError
from repro.dns.records import DEFAULT_TTL, Answer, RecordType
from repro.dns.resolver import (
    DnsTimeout,
    RecursiveResolver,
    ResolverInfo,
    ServFail,
    default_fleet,
)
from repro.dns.zone import AddressEntry, AliasEntry, DnsNamespace, NxDomain

__all__ = [
    "DnsError",
    "DnsTimeout",
    "ServFail",
    "AnycastPolicy",
    "LoadBalancingPolicy",
    "RotationPolicy",
    "StaticPolicy",
    "DEFAULT_TTL",
    "Answer",
    "RecordType",
    "RecursiveResolver",
    "ResolverInfo",
    "default_fleet",
    "AddressEntry",
    "AliasEntry",
    "DnsNamespace",
    "NxDomain",
]
