"""The DNS subsystem's typed error root.

Every exception the resolver/namespace layer raises for a *simulated*
network outcome (SERVFAIL, NXDOMAIN, timeout) derives from
:class:`DnsError`, so stage code can catch the whole subsystem with one
clause and the ``repro lint`` typed-error rule can verify no raise site
escapes the hierarchy.  Argument-contract violations (bad hostnames,
negative TTLs) stay plain :class:`ValueError`.
"""

from __future__ import annotations

__all__ = ["DnsError"]


class DnsError(RuntimeError):
    """Root of the DNS subsystem's typed error hierarchy.

    Subclasses carry only their message, so they survive pickling
    across process-pool workers intact.
    """
