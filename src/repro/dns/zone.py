"""Authoritative DNS: hostname entries and the global namespace.

The ecosystem generator wires every hostname it mints into a
:class:`DnsNamespace` — either an address entry (a server pool plus a
load-balancing policy) or an alias (CNAME).  Recursive resolvers query
the namespace; there is no delegation hierarchy because nothing in the
reproduction depends on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dns.errors import DnsError
from repro.dns.loadbalancer import LoadBalancingPolicy, StaticPolicy
from repro.dns.records import DEFAULT_TTL, Answer
from repro.util.domains import is_valid_hostname, normalize

__all__ = ["AddressEntry", "AliasEntry", "DnsNamespace", "NxDomain"]

#: Maximum CNAME chain length before the namespace declares a loop.
_MAX_CHAIN = 16


class NxDomain(DnsError, LookupError):
    """Raised when a hostname has no entry (the paper's unreachable sites).

    Keeps its historical :class:`LookupError` base alongside the
    subsystem root, so pre-existing ``except LookupError`` callers
    still catch it.
    """


@dataclass
class AddressEntry:
    """A hostname backed by a pool of addresses and a balancing policy.

    ``salt`` defaults to the hostname itself, which makes two hostnames
    over the same pool *unsynchronized* (the paper's dominant failure
    mode); pass a shared salt to synchronize them (the mitigation).
    """

    pool: tuple[str, ...]
    policy: LoadBalancingPolicy = field(default_factory=StaticPolicy)
    ttl: int = DEFAULT_TTL
    salt: str | None = None

    def __post_init__(self) -> None:
        if not self.pool:
            raise ValueError("address entry needs at least one address")


@dataclass
class AliasEntry:
    """A CNAME from one hostname to another."""

    target: str
    ttl: int = DEFAULT_TTL

    def __post_init__(self) -> None:
        self.target = normalize(self.target)
        if not is_valid_hostname(self.target):
            raise ValueError(f"invalid CNAME target: {self.target!r}")


class DnsNamespace:
    """The authoritative view of every name in the synthetic Internet."""

    def __init__(self) -> None:
        self._entries: dict[str, AddressEntry | AliasEntry] = {}

    def add_address(self, name: str, entry: AddressEntry) -> None:
        """Register an address entry for ``name`` (replacing any prior)."""
        name = normalize(name)
        if not is_valid_hostname(name):
            raise ValueError(f"invalid hostname: {name!r}")
        self._entries[name] = entry

    def add_alias(self, name: str, entry: AliasEntry) -> None:
        """Register a CNAME for ``name``."""
        name = normalize(name)
        if not is_valid_hostname(name):
            raise ValueError(f"invalid hostname: {name!r}")
        if entry.target == name:
            raise ValueError(f"CNAME to self: {name}")
        self._entries[name] = entry

    def remove(self, name: str) -> None:
        """Delete ``name`` (simulates a site becoming unreachable)."""
        self._entries.pop(normalize(name), None)

    def entry(self, name: str) -> AddressEntry | AliasEntry | None:
        """The raw entry registered for ``name`` (``None`` if absent).

        This is the read half of the evolution engine's DNS mutation
        hook: churn policies inspect the current pool/salt, then write
        back via :meth:`add_address` / :meth:`add_alias`.
        """
        return self._entries.get(normalize(name))

    def __contains__(self, name: str) -> bool:
        return normalize(name) in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def names(self) -> list[str]:
        """All registered hostnames, sorted."""
        return sorted(self._entries)

    def authoritative_answer(
        self, name: str, *, now: float, resolver_id: str
    ) -> Answer:
        """Resolve ``name`` following CNAMEs, applying LB policies.

        Raises :class:`NxDomain` for unknown names and ``ValueError`` on
        CNAME loops.
        """
        query_name = normalize(name)
        current = query_name
        chain: list[str] = []
        ttl = None
        for _ in range(_MAX_CHAIN):
            entry = self._entries.get(current)
            if entry is None:
                raise NxDomain(current)
            if isinstance(entry, AliasEntry):
                chain.append(entry.target)
                ttl = entry.ttl if ttl is None else min(ttl, entry.ttl)
                current = entry.target
                continue
            ips = entry.policy.select(
                entry.pool,
                salt=entry.salt or current,
                now=now,
                resolver_id=resolver_id,
            )
            if not ips:
                raise NxDomain(current)
            ttl = entry.ttl if ttl is None else min(ttl, entry.ttl)
            return Answer(
                name=query_name, ips=ips, ttl=ttl, cname_chain=tuple(chain)
            )
        raise ValueError(f"CNAME chain too long resolving {query_name}")
