"""Caching recursive resolvers.

Each resolver has an identity (feeding the authoritative rotation hash,
so different vantage points see different load-balancer answers — the
spatial dimension of Figure 3) and a TTL-honouring cache (the temporal
smoothing the paper notes: "load-balanced resolvers with differing
caches can also cause this effect").

Table 11 of the paper lists the 14 public resolvers used for the DNS
study; :func:`default_fleet` mirrors that fleet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.dns.errors import DnsError
from repro.dns.loadbalancer import narrow_answer
from repro.dns.records import Answer
from repro.dns.zone import DnsNamespace, NxDomain
from repro.faults.plan import FaultKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import FaultPlan

__all__ = [
    "DnsError",
    "DnsTimeout",
    "RecursiveResolver",
    "ResolverInfo",
    "ServFail",
    "default_fleet",
]


class ServFail(DnsError):
    """The resolver answered SERVFAIL (RCODE 2) for this query."""


class DnsTimeout(DnsError):
    """The query to the resolver timed out."""


@dataclass(frozen=True)
class ResolverInfo:
    """Descriptive metadata for one resolver (Table 11 row)."""

    resolver_id: str
    ip: str
    country: str
    operator: str
    supports_ecs: bool = False


#: The paper's resolver fleet (Table 11).  The university resolver is the
#: default vantage point for crawls.
_FLEET_ROWS: tuple[tuple[str, str, str], ...] = (
    ("internal", "Germany", "RWTH Aachen University"),
    ("168.126.63.1", "South Korea", "KT Corporation"),
    ("172.104.237.57", "Germany", "FreeDNS"),
    ("172.104.49.100", "Singapore", "FreeDNS"),
    ("177.47.128.2", "Brazil", "Ver Tv Comunicações S/A"),
    ("178.237.152.146", "Spain", "MAXEN TECHNOLOGIES, S.L."),
    ("195.208.5.1", "Russia", "MSK-IX"),
    ("203.50.2.71", "Australia", "Telstra Corporation Limited"),
    ("210.87.250.59", "Hong Kong", "HKT Limited"),
    ("212.89.130.180", "Germany", "Infoserve GmbH"),
    ("221.119.13.154", "Japan", "Marss Japan Co., Ltd"),
    ("8.0.26.0", "United Kingdom", "Level 3 Communications, Inc."),
    ("8.0.6.0", "USA", "Level 3 Communications, Inc."),
    ("80.67.169.12", "France", "French Data Network (FDN)"),
)


def default_fleet(namespace: DnsNamespace) -> list["RecursiveResolver"]:
    """Build the 14-resolver fleet of Table 11 over ``namespace``."""
    fleet = []
    for ip, country, operator in _FLEET_ROWS:
        info = ResolverInfo(
            resolver_id=ip, ip=ip, country=country, operator=operator
        )
        fleet.append(RecursiveResolver(namespace=namespace, info=info))
    return fleet


@dataclass
class RecursiveResolver:
    """A recursive resolver with a TTL-honouring answer cache.

    The cache self-limits: an expired entry found on lookup is deleted
    immediately (lazy deletion), and every ``sweep_interval`` queries a
    full sweep drops everything already expired at that point.  Growth
    is thereby bounded by the *live* entries (at most one per distinct
    cache key with an unexpired TTL) instead of by every name ever
    queried — on long simulated horizons (``dns_study_days``) the
    difference is unbounded.  Live entries are never evicted early:
    doing so would change answers, and answers are part of the study
    digest.
    """

    namespace: DnsNamespace
    info: ResolverInfo
    #: Optional :class:`~repro.faults.plan.FaultPlan` consulted at each
    #: query; ``None`` (the default) keeps every code path untouched.
    faults: "FaultPlan | None" = None
    # thread-safe: resolvers are created per task (ecosystem.make_resolver
    # inside each crawl/visit task) and never shared across tasks; the
    # shared DnsNamespace underneath is read-only after world build.
    _cache: dict[str, tuple[float, Answer]] = field(default_factory=dict)
    queries: int = 0
    cache_hits: int = 0
    stale_answers_served: int = 0
    expired_evictions: int = 0
    #: Queries between periodic full sweeps of expired entries.
    sweep_interval: int = 4096
    _sweep_countdown: int = field(default=4096, repr=False)

    def __post_init__(self) -> None:
        self._sweep_countdown = self.sweep_interval

    @property
    def resolver_id(self) -> str:
        return self.info.resolver_id

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    def sweep(self, *, now: float) -> int:
        """Drop every entry already expired at ``now``; returns count."""
        expired = [
            key for key, (expiry, _) in self._cache.items() if now >= expiry
        ]
        for key in expired:
            del self._cache[key]
        self.expired_evictions += len(expired)
        self._sweep_countdown = self.sweep_interval
        return len(expired)

    def resolve(
        self, name: str, *, now: float, client_subnet: str | None = None
    ) -> Answer:
        """Resolve ``name`` at simulated time ``now``.

        Served from cache while the cached answer's TTL has not expired;
        otherwise queried authoritatively and re-cached.

        ``client_subnet`` models EDNS Client Subnet (RFC 7871): ECS-
        capable resolvers forward the client's subnet so authoritative
        load balancers can answer per client, and cache per subnet.
        The paper's fleet deliberately consisted of non-ECS resolvers
        (Table 11), so overlap differences were attributable to the
        resolvers themselves.
        """
        self.queries += 1
        self._sweep_countdown -= 1
        if self._sweep_countdown <= 0:
            self.sweep(now=now)
        faults = self.faults
        if faults is not None:
            # Transport-level failures strike before any cache lookup —
            # the resolver itself is unreachable or refusing.
            if faults.fires(FaultKind.DNS_TIMEOUT):
                raise DnsTimeout(f"query for {name} timed out")
            if faults.fires(FaultKind.DNS_SERVFAIL):
                raise ServFail(f"SERVFAIL for {name}")
            if faults.fires(FaultKind.DNS_NXDOMAIN):
                raise NxDomain(name)
        use_ecs = self.info.supports_ecs and client_subnet is not None
        cache_key = f"{name}\x1f{client_subnet}" if use_ecs else name
        cached = self._cache.get(cache_key)
        if cached is not None:
            expiry, answer = cached
            if now < expiry:
                self.cache_hits += 1
                return answer
            if faults is not None and faults.fires(FaultKind.DNS_STALE_TTL):
                # Stale-TTL answer: the entry is kept, so the resolver
                # can keep serving (or finally refresh) it on later
                # queries — the temporal smearing the paper notes for
                # load-balanced resolver fleets, exaggerated.
                self.stale_answers_served += 1
                return answer
            # Lazy deletion: the entry is dead and would only ever be
            # overwritten below; drop it so flushes/sweeps stay cheap.
            del self._cache[cache_key]
            self.expired_evictions += 1
        vantage = (
            f"{self.resolver_id}|ecs:{client_subnet}" if use_ecs
            else self.resolver_id
        )
        answer = self.namespace.authoritative_answer(
            name, now=now, resolver_id=vantage
        )
        if (
            faults is not None
            and len(answer.ips) > 1
            and faults.fires(FaultKind.DNS_NARROWED)
        ):
            answer = narrow_answer(
                answer, keep=int(faults.param(FaultKind.DNS_NARROWED, 1.0))
            )
        self._cache[cache_key] = (now + answer.ttl, answer)
        return answer

    def flush(self) -> None:
        """Drop the entire cache (used between crawl visits)."""
        self._cache.clear()
