"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro study --sites 400 --table 1 --headline
    python -m repro study --sites 400 --table all --figure 2
    python -m repro study --sites 2000 --executor process --jobs 8 --profile
    python -m repro study --sites 400 --shards 8 --cache-dir .repro-cache
    python -m repro sweep --sites 200 --seeds 7,8,9 --grid n_sites=120,240 \\
        --cache-dir .repro-cache --profile
    python -m repro study --sites 400 --fault-profile flaky-dns --headline
    python -m repro sweep --sites 200 --grid fault_profile=none,h2-churn
    python -m repro resilience --sites 200 --fault-profile chaos
    python -m repro study --sites 400 --epochs 3 --evolution-policy dns-churn
    python -m repro sweep --sites 200 --epochs 2 --grid evolution_policy=none,mixed
    python -m repro evolve --sites 200 --policy cert-rotation --epochs 5
    python -m repro study --sites 400 --h3-profile broad --headline
    python -m repro sweep --sites 200 --grid h3_profile=none,cdn-first,broad
    python -m repro h3 --h3-profile broad --seed 7 --n-sites 120
    python -m repro audit site000004.com --sites 150
    python -m repro dnsstudy --days 2
    python -m repro mitigations --sites 200
    python -m repro perf --sites 300
    python -m repro bench --scales smoke,golden,stress
    python -m repro bench --check --check-scale smoke --tolerance 0.25

Every command is deterministic given ``--seed`` — including under
``--executor thread`` / ``--executor process``, which change only
wall-clock time (see :mod:`repro.runtime`).
"""

from __future__ import annotations

import argparse
import random
import sys

__all__ = ["build_parser", "main"]


def _add_runtime_args(parser: argparse.ArgumentParser) -> None:
    """Executor/cache knobs shared by every study-running command."""
    # SUPPRESS: only overwrite the root parser's --seed when the flag
    # is actually given after the subcommand.
    parser.add_argument(
        "--seed", type=int, default=argparse.SUPPRESS,
        help="root seed (equivalent to the pre-subcommand --seed)",
    )
    parser.add_argument(
        "--executor", default="serial",
        help="execution substrate: serial, thread or process, "
             "optionally with workers (e.g. process:8)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker count for thread/process executors",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="content-addressed stage cache directory; identical crawl "
             "and classification configs load from disk instead of "
             "recomputing (see repro.store)",
    )
    parser.add_argument(
        "--shards", type=int, default=1,
        help="partition each crawl into this many deterministic site "
             "shards, cached and recomputed independently (output is "
             "shard-count-invariant; see repro.crawl.shards)",
    )
    parser.add_argument(
        "--fault-profile", default="none",
        help="named fault scenario injected into every crawl visit: "
             "none, flaky-dns, broken-tls, h2-churn, slow-origin, "
             "chaos, or the task-level worker-crash, worker-poison, "
             "cache-rot (see repro.faults)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="replay the run journal of an interrupted identical run "
             "(requires --cache-dir) and skip its finished shards "
             "(see repro.runlog)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="fail fast on the first shard failure instead of "
             "retrying and quarantining (disables graceful "
             "degradation)",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="watchdog window for pool executors: abort a crawl stage "
             "that completes no new work for this many seconds "
             "(default: wait forever)",
    )
    parser.add_argument(
        "--epochs", type=int, default=0,
        help="advance the world through this many churn epochs of "
             "--evolution-policy before measuring (see repro.evolve)",
    )
    parser.add_argument(
        "--evolution-policy", default="none",
        help="named ecosystem-churn policy evolving the world per "
             "epoch: none, cert-rotation, dns-churn, cdn-migration, "
             "shard-consolidation, h3-rollout or mixed (see repro.evolve)",
    )
    parser.add_argument(
        "--h3-profile", default="none",
        help="named HTTP/3 alt-svc adoption profile for the synthetic "
             "world: none, cdn-first, broad, or adopt-<fraction> "
             "(see repro.h3)",
    )


def _cache_from_args(args):
    if getattr(args, "cache_dir", None) is None:
        return None
    from repro.store import StudyCache

    return StudyCache(args.cache_dir)


def _study_from_args(args):
    """Run the full study as configured by the common CLI flags."""
    from repro.analysis.study import Study, StudyConfig
    from repro.runtime import StageTimings, make_executor, null_timings

    timings = (
        StageTimings(memory=True) if getattr(args, "profile", False)
        else null_timings()
    )
    config = StudyConfig(
        seed=args.seed,
        n_sites=args.sites,
        executor=args.executor,
        parallelism=args.jobs,
        fault_profile=getattr(args, "fault_profile", "none"),
        epochs=getattr(args, "epochs", 0),
        evolution_policy=getattr(args, "evolution_policy", "none"),
        h3_profile=getattr(args, "h3_profile", "none"),
        shards=getattr(args, "shards", 1),
    )
    cache = _cache_from_args(args)
    resume = getattr(args, "resume", False)
    if resume and cache is None:
        print("error: --resume requires --cache-dir (the journal lives "
              "under the cache)", file=sys.stderr)
        raise SystemExit(2)
    try:
        config.validate()
        executor = make_executor(
            config.executor, config.parallelism,
            task_timeout=getattr(args, "task_timeout", None),
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        raise SystemExit(2)
    with executor:
        study = Study.run(
            config, executor=executor, timings=timings, cache=cache,
            resume=resume, strict=getattr(args, "strict", False),
        )
    if study.coverage is not None and not study.coverage.complete:
        print(f"warning: run is {study.coverage.describe()}; results "
              f"below exclude the quarantined shards", file=sys.stderr)
    return study


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Sharding and HTTP/2 Connection Reuse "
                    "Revisited' (IMC '21)",
    )
    parser.add_argument("--seed", type=int, default=7, help="root seed")
    commands = parser.add_subparsers(dest="command", required=True)

    study = commands.add_parser("study", help="run the full study")
    study.add_argument("--sites", type=int, default=400)
    study.add_argument("--table", default=None,
                       help="table number 1-12, or 'all'")
    study.add_argument("--figure", type=int, choices=(2, 3), default=None)
    study.add_argument("--headline", action="store_true")
    study.add_argument("--profile", action="store_true",
                       help="print per-stage wall-clock timings")
    _add_runtime_args(study)

    sweep = commands.add_parser(
        "sweep",
        help="run a scenario-matrix sweep and report cross-seed robustness",
    )
    sweep.add_argument("--sites", type=int, default=400,
                       help="base universe size (sweepable via --grid)")
    sweep.add_argument("--seeds", default=None,
                       help="comma-separated seeds (default: --seed)")
    sweep.add_argument(
        "--grid", action="append", default=[], metavar="FIELD=V1,V2",
        help="sweep a StudyConfig field over values; repeatable; "
             "tuple fields join elements with '+', e.g. "
             "alexa_variants=fetch+nofetch,fetch",
    )
    sweep.add_argument("--profile", action="store_true",
                       help="print aggregated stage timings and cache stats")
    _add_runtime_args(sweep)

    audit = commands.add_parser("audit", help="audit one site's connections")
    audit.add_argument("domain", nargs="?", default=None)
    audit.add_argument("--sites", type=int, default=150)

    dns = commands.add_parser("dnsstudy", help="the Appendix A.4 DNS study")
    dns.add_argument("--days", type=float, default=2.0)
    dns.add_argument("--sites", type=int, default=50)

    mitigations = commands.add_parser("mitigations",
                                      help="measure the mitigation levers")
    mitigations.add_argument("--sites", type=int, default=200)

    perf = commands.add_parser("perf",
                               help="performance impact of redundancy")
    perf.add_argument("--sites", type=int, default=300)
    _add_runtime_args(perf)

    report = commands.add_parser(
        "report", help="write the full evaluation report (Markdown)"
    )
    report.add_argument("output", help="output .md path")
    report.add_argument("--sites", type=int, default=400)
    _add_runtime_args(report)

    validate = commands.add_parser(
        "validate", help="check the study against the paper's claims"
    )
    validate.add_argument("--sites", type=int, default=400)
    _add_runtime_args(validate)

    resilience = commands.add_parser(
        "resilience",
        help="run a faulted study and diff it against its fault-free "
             "baseline (reuse deltas, attribution shifts, taxonomy)",
    )
    resilience.add_argument("--sites", type=int, default=200)
    _add_runtime_args(resilience)

    h3 = commands.add_parser(
        "h3",
        help="run an h3-rollout study and diff it against its h2-only "
             "baseline (protocol split, reuse deltas, what-if coalescing "
             "potential)",
    )
    h3.add_argument(
        "--sites", "--n-sites", dest="sites", type=int, default=200,
        help="universe size (both spellings accepted)",
    )
    _add_runtime_args(h3)

    evolve = commands.add_parser(
        "evolve",
        help="run a longitudinal study: the same scenario measured at "
             "every churn epoch (reuse trajectory, attribution drift, "
             "reuse-opportunity half-life)",
    )
    evolve.add_argument("--sites", type=int, default=200)
    evolve.add_argument(
        "--policy", default=None,
        help="named evolution policy: cert-rotation, dns-churn, "
             "cdn-migration, shard-consolidation or mixed",
    )
    _add_runtime_args(evolve)
    # For evolve, --epochs is the longitudinal horizon, not a world
    # offset; default to a 5-epoch sequence (0 = baseline study only).
    evolve.set_defaults(epochs=5)

    bench = commands.add_parser(
        "bench",
        help="measure pipeline + hot-path performance; write/check "
             "BENCH_*.json",
    )
    bench.add_argument(
        "--scales", default="smoke,golden,stress",
        help="comma-separated pipeline scales to run (smoke, golden, "
             "stress, smoke-sharded, golden-sharded)",
    )
    bench.add_argument("--repeat", type=int, default=3,
                       help="repetitions per measurement (best one wins)")
    bench.add_argument("--out-dir", default=".",
                       help="directory holding BENCH_pipeline.json / "
                            "BENCH_hotpath.json")
    bench.add_argument("--label", default="bench",
                       help="history label recorded for this session")
    bench.add_argument("--note", default="",
                       help="free-text note stored with the history entry")
    bench.add_argument("--pipeline-only", action="store_true",
                       help="skip the hot-path microbenchmarks")
    bench.add_argument("--hotpath", action="store_true",
                       help="run only the hot-path microbenchmarks")
    bench.add_argument(
        "--check", action="store_true",
        help="compare a fresh run against the committed "
             "BENCH_pipeline.json instead of rewriting it; exit 1 on "
             "digest mismatch or wall-clock regression",
    )
    bench.add_argument("--check-scale", default="golden",
                       help="scale measured by --check (default: golden)")
    bench.add_argument("--tolerance", type=float, default=0.25,
                       help="allowed relative wall-clock regression for "
                            "--check (0.25 == 25%%)")

    lint = commands.add_parser(
        "lint",
        help="run the determinism/cache-key/shared-state/typed-error "
             "static checks",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src", "tools"],
        help="files or directories to lint (default: src tools)",
    )
    lint.add_argument(
        "--baseline", default="tools/lint_baseline.txt",
        help="baseline file of accepted findings (default: "
             "tools/lint_baseline.txt)",
    )
    lint.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline file from the current findings",
    )
    lint.add_argument(
        "--check", action="store_true",
        help="CI mode: also fail when the baseline lists findings that "
             "no longer fire (the baseline may only shrink)",
    )

    serve = commands.add_parser(
        "serve",
        help="serve studies and sweeps over HTTP (JSON or SSE streaming) "
             "from one shared executor and cache (see docs/API_REFERENCE.md)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="address to bind (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8765,
                       help="port to bind (default: 8765; 0 picks a free one)")
    serve.add_argument(
        "--cache-dir", default=None,
        help="content-addressed stage cache shared by every request "
             "(required; warm requests answer near-instantly)",
    )
    serve.add_argument(
        "--executor", default="thread",
        help="shared execution substrate for all requests: serial, "
             "thread or process (default: thread)",
    )
    serve.add_argument(
        "--jobs", type=int, default=None,
        help="worker count for the shared executor",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=4,
        help="admission limit: concurrent study/sweep requests beyond "
             "this are answered 429 (default: 4)",
    )
    serve.add_argument(
        "--request-timeout", type=float, default=None, metavar="SECONDS",
        help="per-connection socket timeout (default: none)",
    )

    runs = commands.add_parser(
        "runs",
        help="list the run journals under a cache directory (complete / "
             "resumable / quarantined), or show one run's records",
    )
    runs.add_argument(
        "run", nargs="?", default=None,
        help="run id (or unique prefix) to show in per-shard detail; "
             "omit to list every journal",
    )
    runs.add_argument(
        "--cache-dir", default=None,
        help="cache directory whose runs/ journals to inspect",
    )
    return parser


def _cmd_study(args) -> int:
    from repro.analysis import ALL_TABLES, figure2, figure3, headline

    study = _study_from_args(args)
    shown = False
    if args.table:
        names = sorted(ALL_TABLES) if args.table == "all" else [
            f"table{int(args.table)}"
        ]
        for name in names:
            if name not in ALL_TABLES:
                print(f"unknown table: {args.table}", file=sys.stderr)
                return 2
            print(ALL_TABLES[name](study).render())
            print()
        shown = True
    if args.figure == 2:
        print(figure2(study).render())
        shown = True
    elif args.figure == 3:
        print(figure3(study).render())
        shown = True
    if args.headline or not shown:
        print(headline(study).render())
    if args.profile:
        print()
        print(study.timings.render())
    return 0


def _cmd_sweep(args) -> int:
    from repro.analysis.robustness import robustness_report
    from repro.analysis.study import StudyConfig
    from repro.sweep import SweepSpec, run_sweep

    try:
        seeds = tuple(
            int(part) for part in (args.seeds or str(args.seed)).split(",")
        )
    except ValueError:
        print(f"error: bad --seeds {args.seeds!r}", file=sys.stderr)
        return 2
    base = StudyConfig(
        seed=seeds[0],
        n_sites=args.sites,
        executor=args.executor,
        parallelism=args.jobs,
        fault_profile=args.fault_profile,
        epochs=args.epochs,
        evolution_policy=args.evolution_policy,
        h3_profile=args.h3_profile,
        shards=args.shards,
    )
    try:
        spec = SweepSpec(
            base=base, seeds=seeds, axes=SweepSpec.parse_axes(args.grid)
        )
        spec.cells()  # expand eagerly so bad axis *values* also exit cleanly
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    cache = _cache_from_args(args)
    if args.resume and cache is None:
        print("error: --resume requires --cache-dir (the journals live "
              "under the cache)", file=sys.stderr)
        return 2
    result = run_sweep(
        spec, cache=cache, progress=print,
        resume=args.resume, strict=args.strict,
    )
    print()
    print(robustness_report(result))
    if args.profile:
        print()
        print(result.timings().render())
        if cache is not None:
            print()
            print(cache.render_stats())
    return 0


def _cmd_audit(args) -> int:
    from repro.browser.browser import ChromiumBrowser
    from repro.core.classifier import classify_site
    from repro.core.session import LifetimeModel, records_from_visit
    from repro.util.clock import SimClock
    from repro.web.ecosystem import Ecosystem, EcosystemConfig

    ecosystem = Ecosystem.generate(
        EcosystemConfig(seed=args.seed, n_sites=args.sites)
    )
    domain = args.domain or ecosystem.websites[0].domain
    browser = ChromiumBrowser(
        ecosystem=ecosystem,
        resolver=ecosystem.make_resolver(),
        clock=SimClock(),
        rng=random.Random(args.seed),
    )
    visit = browser.visit(domain)
    if visit.unreachable:
        print(f"{domain}: unreachable", file=sys.stderr)
        return 1
    verdict = classify_site(domain, records_from_visit(visit),
                            model=LifetimeModel.ACTUAL)
    print(f"{domain}: {verdict.h2_connections} HTTP/2 connections, "
          f"{verdict.redundant_count} redundant")
    for hit in verdict.hits:
        print(f"  {hit.cause.value:<4} #{hit.record.connection_id} "
              f"{hit.record.domain} ({hit.record.ip})  "
              f"prev: #{hit.previous.connection_id} {hit.previous.domain} "
              f"({hit.previous.ip})")
    return 0


def _cmd_dnsstudy(args) -> int:
    from repro.analysis.figures import Figure3Result
    from repro.dnsstudy.study import DnsLoadBalancingStudy
    from repro.web.ecosystem import Ecosystem, EcosystemConfig

    ecosystem = Ecosystem.generate(
        EcosystemConfig(seed=args.seed, n_sites=args.sites)
    )
    result = DnsLoadBalancingStudy(
        ecosystem=ecosystem, duration_s=args.days * 24 * 3600.0
    ).run()
    print(Figure3Result(study=result).render())
    return 0


def _cmd_mitigations(args) -> int:
    from repro.analysis.ablation import compare_mitigations

    comparison = compare_mitigations(seed=args.seed, n_sites=args.sites)
    print(comparison.render())
    return 0


def _cmd_perf(args) -> int:
    from repro.perf.corpus import corpus_impact

    study = _study_from_args(args)
    for key in ("har-endless", "alexa"):
        impact = corpus_impact(study.dataset(key), {})
        print(impact.render())
        print()
    return 0


def _cmd_report(args) -> int:
    from repro.analysis.report import write_report

    study = _study_from_args(args)
    path = write_report(study, args.output)
    print(f"report written to {path}")
    return 0


def _cmd_validate(args) -> int:
    from repro.analysis.validation import validate_study

    study = _study_from_args(args)
    scorecard = validate_study(study)
    print(scorecard.render())
    return 0 if scorecard.all_passed else 1


def _cmd_resilience(args) -> int:
    from dataclasses import replace

    from repro.analysis.resilience import resilience_report
    from repro.analysis.study import Study, StudyConfig

    if args.fault_profile == "none":
        print("error: resilience needs --fault-profile (e.g. flaky-dns, "
              "broken-tls, h2-churn, slow-origin, chaos)", file=sys.stderr)
        return 2
    faulted_config = StudyConfig(
        seed=args.seed,
        n_sites=args.sites,
        executor=args.executor,
        parallelism=args.jobs,
        fault_profile=args.fault_profile,
        epochs=args.epochs,
        evolution_policy=args.evolution_policy,
        h3_profile=args.h3_profile,
        shards=args.shards,
    )
    try:
        faulted_config.validate()
        executor = faulted_config.make_executor()
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    cache = _cache_from_args(args)
    if args.resume and cache is None:
        print("error: --resume requires --cache-dir (the journals live "
              "under the cache)", file=sys.stderr)
        return 2
    with executor:
        baseline = Study.run(
            replace(faulted_config, fault_profile="none"),
            executor=executor, cache=cache,
            resume=args.resume, strict=args.strict,
        )
        faulted = Study.run(
            faulted_config, executor=executor, cache=cache,
            resume=args.resume, strict=args.strict,
        )
    print(resilience_report(baseline, faulted).render())
    return 0


def _cmd_h3(args) -> int:
    from dataclasses import replace

    from repro.analysis.h3 import h3_report
    from repro.analysis.study import Study, StudyConfig

    if args.h3_profile == "none":
        print("error: h3 needs --h3-profile (e.g. cdn-first, broad, "
              "adopt-0.25)", file=sys.stderr)
        return 2
    h3_config = StudyConfig(
        seed=args.seed,
        n_sites=args.sites,
        executor=args.executor,
        parallelism=args.jobs,
        fault_profile=args.fault_profile,
        epochs=args.epochs,
        evolution_policy=args.evolution_policy,
        h3_profile=args.h3_profile,
        shards=args.shards,
    )
    try:
        h3_config.validate()
        executor = h3_config.make_executor()
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    cache = _cache_from_args(args)
    if args.resume and cache is None:
        print("error: --resume requires --cache-dir (the journals live "
              "under the cache)", file=sys.stderr)
        return 2
    with executor:
        baseline = Study.run(
            replace(h3_config, h3_profile="none"),
            executor=executor, cache=cache,
            resume=args.resume, strict=args.strict,
        )
        h3_study = Study.run(
            h3_config, executor=executor, cache=cache,
            resume=args.resume, strict=args.strict,
        )
    print(h3_report(baseline, h3_study).render())
    return 0


def _cmd_evolve(args) -> int:
    from repro.analysis.study import StudyConfig
    from repro.evolve import run_longitudinal

    # --policy is the canonical spelling; fall back to the shared
    # --evolution-policy flag so both read naturally.
    policy = args.policy or (
        args.evolution_policy if args.evolution_policy != "none" else None
    )
    if policy is None or policy == "none":
        print("error: evolve needs --policy (e.g. cert-rotation, dns-churn, "
              "cdn-migration, shard-consolidation, mixed)", file=sys.stderr)
        return 2
    config = StudyConfig(
        seed=args.seed,
        n_sites=args.sites,
        executor=args.executor,
        parallelism=args.jobs,
        fault_profile=args.fault_profile,
        h3_profile=args.h3_profile,
        shards=args.shards,
    )
    cache = _cache_from_args(args)
    if args.resume and cache is None:
        print("error: --resume requires --cache-dir (the journals live "
              "under the cache)", file=sys.stderr)
        return 2
    try:
        result = run_longitudinal(
            config, policy=policy, epochs=args.epochs,
            cache=cache, progress=print,
            resume=args.resume, strict=args.strict,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print()
    print(result.render())
    return 0


def _cmd_bench(args) -> int:
    from pathlib import Path

    from repro.perfbench import (
        check_pipeline,
        load_bench,
        run_microbenchmarks,
        run_pipeline_bench,
        write_hotpath_bench,
        write_pipeline_bench,
    )
    from repro.perfbench.pipeline import SCALES
    from repro.perfbench.report import (
        HOTPATH_BENCH,
        PIPELINE_BENCH,
        CheckFailure,
        render_check_report,
    )

    out_dir = Path(args.out_dir)
    pipeline_path = out_dir / PIPELINE_BENCH

    if args.check:
        try:
            committed = load_bench(pipeline_path)
        except FileNotFoundError:
            print(f"error: no committed {pipeline_path} to check against",
                  file=sys.stderr)
            return 2
        except CheckFailure as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        fresh = run_pipeline_bench(args.check_scale, repeats=args.repeat)
        try:
            outcome = check_pipeline(fresh, committed,
                                     tolerance=args.tolerance)
        except CheckFailure as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(render_check_report(outcome))
        return 0 if outcome.passed else 1

    scales = [part.strip() for part in args.scales.split(",") if part.strip()]
    unknown = [scale for scale in scales if scale not in SCALES]
    if unknown:
        print(f"error: unknown scales {unknown}; pick from {sorted(SCALES)}",
              file=sys.stderr)
        return 2

    if not args.hotpath:
        # Ascending size: ru_maxrss is a process-wide high-water mark,
        # so larger scales must not run before smaller ones record
        # their peak RSS.
        scales.sort(key=lambda scale: SCALES[scale].n_sites)
        runs = []
        for scale in scales:
            run = run_pipeline_bench(scale, repeats=args.repeat)
            print(f"pipeline {scale:<7} {run.wall_s:8.2f} s  "
                  f"digest {run.digest}  peak RSS {run.peak_rss_kb:,} KiB")
            runs.append(run)
        payload = write_pipeline_bench(
            runs, pipeline_path, label=args.label, note=args.note
        )
        for scale, speedup in payload["speedup_vs_oldest"].items():
            print(f"  {scale}: {speedup:.2f}x vs oldest recorded baseline")
        print(f"wrote {pipeline_path}")

    if not args.pipeline_only:
        results = run_microbenchmarks(repeat=args.repeat)
        for result in results:
            print(f"hotpath {result.name:<20} {result.ops_per_s:>12,.0f} "
                  f"ops/s  ({result.note})")
        hotpath_path = out_dir / HOTPATH_BENCH
        write_hotpath_bench(results, hotpath_path, label=args.label)
        print(f"wrote {hotpath_path}")
    return 0


def _cmd_lint(args) -> int:
    from pathlib import Path

    from repro.lint import (
        Project,
        default_rules,
        load_baseline,
        run_lint,
        write_baseline,
    )

    root = Path.cwd()
    baseline_path = root / args.baseline
    project = Project.load(root, args.paths)
    baseline = load_baseline(baseline_path)
    report = run_lint(project, default_rules(), baseline=baseline)

    if args.write_baseline:
        write_baseline(baseline_path, report.findings)
        print(f"wrote {len(report.findings)} finding(s) to {args.baseline}")
        return 0

    for finding in report.new:
        print(finding.render())
    if args.check:
        for key in sorted(report.stale):
            print(f"stale baseline entry (finding no longer fires): "
                  f"{key.replace(chr(9), ' ')}")
    ok = report.ok(check=args.check)
    if not ok:
        print(
            f"repro lint: {len(report.new)} new finding(s), "
            f"{len(report.stale)} stale baseline entr(y/ies)",
            file=sys.stderr,
        )
    return 0 if ok else 1


def _cmd_serve(args) -> int:
    import signal

    from repro.serve import StudyService, make_server

    if args.cache_dir is None:
        print("error: serve needs --cache-dir (the cache is what makes "
              "repeated requests instant)", file=sys.stderr)
        return 2
    try:
        service = StudyService(
            args.cache_dir, executor=args.executor, jobs=args.jobs,
            max_inflight=args.max_inflight,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    server = make_server(
        service, host=args.host, port=args.port,
        request_timeout=args.request_timeout,
    )
    host, port = server.server_address[:2]
    print(f"repro serve: listening on http://{host}:{port} "
          f"(executor={args.executor}, max_inflight={args.max_inflight}, "
          f"cache={args.cache_dir})", file=sys.stderr)

    def _sigterm(signum, frame):
        # Fold SIGTERM into the KeyboardInterrupt path so systemd-style
        # stops and Ctrl-C drain identically.
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _sigterm)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        # Graceful drain: stop admitting, let every inflight request
        # hit its next observer checkpoint (which journals and sends a
        # terminal error event to streaming clients), then tear down.
        print("\nrepro serve: draining inflight requests...",
              file=sys.stderr)
        service.drain()
        if not service.wait_idle(timeout=30.0):
            print("repro serve: drain timed out; journals of unfinished "
                  "runs remain resumable", file=sys.stderr)
        print(f"interrupted; re-run interrupted requests with "
              f"\"resume\": true (or repro study --resume --cache-dir "
              f"{args.cache_dir}) to pick up where they left off",
              file=sys.stderr)
        return 130
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.server_close()
        service.close()
    return 0


def _cmd_runs(args) -> int:
    from pathlib import Path

    from repro.runlog import list_runs, render_run_detail, render_runs

    if args.cache_dir is None:
        print("error: runs needs --cache-dir (journals live under "
              "<cache-dir>/runs/)", file=sys.stderr)
        return 2
    directory = Path(args.cache_dir)
    if args.run is not None:
        detail = render_run_detail(directory, args.run)
        if detail is None:
            print(f"error: no unique run journal matches {args.run!r} "
                  f"under {directory}/runs/", file=sys.stderr)
            return 1
        print(detail)
        return 0
    print(render_runs(list_runs(directory)))
    return 0


_COMMANDS = {
    "study": _cmd_study,
    "sweep": _cmd_sweep,
    "audit": _cmd_audit,
    "dnsstudy": _cmd_dnsstudy,
    "mitigations": _cmd_mitigations,
    "perf": _cmd_perf,
    "report": _cmd_report,
    "validate": _cmd_validate,
    "resilience": _cmd_resilience,
    "h3": _cmd_h3,
    "evolve": _cmd_evolve,
    "bench": _cmd_bench,
    "lint": _cmd_lint,
    "serve": _cmd_serve,
    "runs": _cmd_runs,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except KeyboardInterrupt:
        # Ctrl-C mid-run is an expected, recoverable event, not a
        # crash: executor pools and run journals close on their way
        # out (context managers / finally blocks), the cache only ever
        # holds atomically-renamed entries, and the journal's fsynced
        # prefix is exactly what --resume replays.
        print("\ninterrupted; re-run with --resume --cache-dir to pick "
              "up where this run left off", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # stdout went away (e.g. piped into `head`): die quietly like
        # any well-behaved unix filter.  Point the dangling descriptor
        # at devnull so the interpreter's shutdown flush cannot raise
        # a second time.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141  # 128 + SIGPIPE, the shell convention


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
