"""Deterministic site-shard planning for the crawl stages.

A sharded crawl partitions its domain list into hash-stable buckets
(:func:`repro.runtime.shard_items`): a domain's shard is a pure
function of the domain and the shard count, never of the other
domains.  Each shard is cached independently under a key covering the
world identity *of that shard's domains* (the pristine ecosystem
config plus the domains' evolution token — see
:meth:`repro.web.ecosystem.Ecosystem.cache_world_key`), the crawler
knobs, and the shard's domains with their global schedule slots.

Two consequences fall out of that key shape:

* a study re-run with an unchanged configuration loads every shard
  from disk, and a *partially* invalidated study (one knob of one
  shard's world changed) recrawls only the shards whose keys moved;
* epoch N+1 of a longitudinal run shares keys with epoch N (and with
  the pristine world) for every shard whose domains the evolution
  ledger never touched, so only ledger-dirty shards are recrawled.

Global schedule slots travel with the shard: site start times are
positional in the *full* domain list, so a shard crawled alone must
schedule its sites exactly where the monolithic crawl would have.
That is what makes the N-shard fold byte-identical to the monolith.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.runtime import shard_items

__all__ = ["CrawlShard", "plan_crawl_shards", "pending_items"]


@dataclass(frozen=True)
class CrawlShard:
    """One bucket of a sharded crawl plan."""

    #: Bucket id in the deterministic partition (not contiguous when
    #: empty buckets were dropped).
    index: int
    #: The shard's domains, in global crawl order.
    domains: tuple[str, ...]
    #: Each domain's slot in the full crawl schedule.
    offsets: tuple[int, ...]
    #: Per-shard cache key; ``None`` on uncached runs.
    key: str | None = None
    #: Whether the artefact existed on disk at planning time (item
    #: accounting only; the crawl itself re-checks via ``get``).
    cached: bool = False


def plan_crawl_shards(
    domains: Sequence[str],
    n_shards: int,
    *,
    keyer: Callable[[tuple[str, ...], tuple[int, ...]], str] | None = None,
    contains: Callable[[str], bool] | None = None,
) -> list[CrawlShard]:
    """The shard plan for one crawl stage over ``domains``.

    ``keyer`` maps ``(shard domains, offsets)`` to the shard's cache
    key (omitted on uncached runs, so no hashing happens at all);
    ``contains`` reports whether a key's artefact already exists.
    Empty buckets are dropped: they carry no work and no artefact.
    """
    indexed = list(enumerate(domains))
    buckets = shard_items(indexed, n_shards, key=lambda pair: pair[1])
    plan: list[CrawlShard] = []
    for bucket_id, bucket in enumerate(buckets):
        if not bucket:
            continue
        offsets = tuple(offset for offset, _ in bucket)
        members = tuple(domain for _, domain in bucket)
        key = keyer(members, offsets) if keyer is not None else None
        cached = contains(key) if key is not None and contains else False
        plan.append(CrawlShard(
            index=bucket_id, domains=members, offsets=offsets,
            key=key, cached=cached,
        ))
    return plan


def pending_items(plan: Sequence[CrawlShard]) -> int:
    """Sites the plan will actually crawl (cached shards count zero)."""
    return sum(len(shard.domains) for shard in plan if not shard.cached)
