"""The HTTP Archive crawl (§4.2.1).

"For every website, the landing page is loaded 3 times and the HAR file
for the median load time is saved."  The crawler reproduces that
pipeline against the synthetic ecosystem from a US vantage point (the
HTTP Archive crawls from US data centres, which is one of the
vantage-point differences the paper discusses in Appendix A.3/A.4),
injecting the §4.3 logging inconsistencies that the reader later
filters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.browser.browser import BrowserConfig, ChromiumBrowser
from repro.crawl.classify import ClassifiedDataset, classify_dataset
from repro.core.session import LifetimeModel
from repro.har.model import HarFile
from repro.har.reader import FilterStats, read_sessions
from repro.har.writer import HarNoiseConfig, write_har
from repro.util.clock import SimClock
from repro.util.rng import RngFactory
from repro.web.ecosystem import Ecosystem

__all__ = ["HarCorpus", "HttpArchiveCrawler"]


@dataclass
class HarCorpus:
    """The crawl's output: one (median-load) HAR per reachable site."""

    name: str
    hars: dict[str, HarFile] = field(default_factory=dict)
    unreachable: list[str] = field(default_factory=list)

    def classify(
        self, *, model: LifetimeModel, asdb=None, name: str | None = None
    ) -> ClassifiedDataset:
        """Sanitize all HARs and classify under ``model``."""
        stats = FilterStats()
        site_records = {}
        for site, har in self.hars.items():
            result = read_sessions(har)
            stats.merge(result.stats)
            site_records[site] = result.records
        dataset = classify_dataset(
            name or f"{self.name}-{model.value}",
            site_records,
            model=model,
            asdb=asdb,
        )
        dataset.filter_stats = stats  # type: ignore[attr-defined]
        return dataset


@dataclass
class HttpArchiveCrawler:
    """Visits sites three times and keeps the median-load HAR."""

    ecosystem: Ecosystem
    seed: int = 11
    vantage_country: str = "US"
    noise: HarNoiseConfig = field(default_factory=HarNoiseConfig)
    start_time: float = 0.0
    loads_per_site: int = 3
    observe_s: float = 300.0

    def crawl(self, domains: list[str] | None = None) -> HarCorpus:
        """Crawl ``domains`` (default: the ecosystem's CrUX-like sample)."""
        if domains is None:
            domains = self.ecosystem.httparchive_sample(seed=self.seed)
        rng = RngFactory(self.seed)
        clock = SimClock(self.start_time)
        resolver = self.ecosystem.make_resolver("httparchive-crux")
        browser = ChromiumBrowser(
            ecosystem=self.ecosystem,
            resolver=resolver,
            clock=clock,
            rng=rng.stream("browser"),
            config=BrowserConfig(
                vantage_country=self.vantage_country, observe_s=self.observe_s
            ),
        )
        gap_rng = rng.stream("gaps")
        noise_rng = rng.stream("har-noise")
        corpus = HarCorpus(name="httparchive")
        for domain in domains:
            visits = []
            for _ in range(self.loads_per_site):
                visit = browser.visit(domain)
                if visit.unreachable:
                    break
                visits.append(visit)
                clock.advance(gap_rng.uniform(1.0, 5.0))
            if not visits:
                corpus.unreachable.append(domain)
                continue
            # Median of three by onLoad time, like the HTTP Archive.
            visits.sort(key=lambda visit: visit.load.load_time)
            median_visit = visits[len(visits) // 2]
            corpus.hars[domain] = write_har(
                median_visit, noise=self.noise, rng=noise_rng
            )
        return corpus
