"""The HTTP Archive crawl (§4.2.1).

"For every website, the landing page is loaded 3 times and the HAR file
for the median load time is saved."  The crawler reproduces that
pipeline against the synthetic ecosystem from a US vantage point (the
HTTP Archive crawls from US data centres, which is one of the
vantage-point differences the paper discusses in Appendix A.3/A.4),
injecting the §4.3 logging inconsistencies that the reader later
filters.

Sites are crawled independently: each gets its own time slot, browser
and RNG streams derived from ``(seed, domain)``, so the crawl can run
through any :class:`~repro.runtime.Executor` and produce identical
output.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.browser.browser import BrowserConfig, ChromiumBrowser
from repro.crawl.classify import ClassifiedDataset, aggregate_classifications
from repro.crawl.shards import CrawlShard, plan_crawl_shards
from repro.core.classifier import SiteClassification, classify_site
from repro.core.session import LifetimeModel
from repro.faults.plan import FaultPlan, merge_counts
from repro.har.model import HarFile
from repro.har.reader import FilterStats, read_sessions
from repro.har.writer import HarNoiseConfig, write_har
from repro.runtime import Executor, SerialExecutor, ecosystem_for, prime_ecosystem
from repro.store import StudyCache, stable_key
from repro.util.clock import SimClock
from repro.util.rng import RngFactory, stable_hash
from repro.web.ecosystem import Ecosystem, EcosystemConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runlog import RunContext

__all__ = ["HarCorpus", "HttpArchiveCrawler"]


@dataclass(frozen=True)
class _HaSiteTask:
    """Everything one worker needs to crawl one site."""

    ecosystem_config: EcosystemConfig
    seed: int
    domain: str
    start_time: float
    vantage_country: str
    noise: HarNoiseConfig
    loads_per_site: int
    observe_s: float
    fault_profile: str = "none"
    #: Retry generation (set by the run layer's re-dispatch); feeds
    #: only the attempt-bounded ``worker-crash`` fault, never an RNG
    #: stream, so a task's *output* is attempt-independent.
    attempt: int = 0


def _crawl_one_site(
    task: _HaSiteTask,
) -> tuple[str, HarFile | None, tuple[tuple[str, int], ...]]:
    """Visit one site ``loads_per_site`` times; keep the median HAR.

    Returns ``(domain, median HAR or None, fired-fault counts)``; the
    fault plan — like every RNG stream — derives from the task's
    ``(seed, run, domain)``, so the same faults strike under any
    executor.  One plan spans all three loads of the site.
    """
    ecosystem = ecosystem_for(task.ecosystem_config)
    rng = RngFactory(stable_hash(task.seed, "ha-site", task.domain))
    clock = SimClock(task.start_time)
    plan = FaultPlan.compile(
        task.fault_profile, seed=task.seed, run="httparchive",
        domain=task.domain,
    )
    if plan is not None and plan.task_crash(task.attempt):
        from repro.runlog.errors import WorkerCrashError

        raise WorkerCrashError(
            f"injected worker crash visiting {task.domain} "
            f"(attempt {task.attempt})"
        )
    resolver = ecosystem.make_resolver("httparchive-crux")
    if plan is not None:
        resolver.faults = plan
    browser = ChromiumBrowser(
        ecosystem=ecosystem,
        resolver=resolver,
        clock=clock,
        rng=rng.stream("browser"),
        config=BrowserConfig(
            vantage_country=task.vantage_country, observe_s=task.observe_s
        ),
        faults=plan,
    )
    gap_rng = rng.stream("gaps")
    visits = []
    for _ in range(task.loads_per_site):
        visit = browser.visit(task.domain)
        if visit.unreachable:
            break
        visits.append(visit)
        clock.advance(gap_rng.uniform(1.0, 5.0))
    counts = plan.counts() if plan is not None else ()
    if not visits:
        return task.domain, None, counts
    # Median of three by onLoad time, like the HTTP Archive.
    visits.sort(key=lambda visit: visit.load.load_time)
    median_visit = visits[len(visits) // 2]
    har = write_har(median_visit, noise=task.noise, rng=rng.stream("har-noise"))
    return task.domain, har, counts


def _sanitize_and_classify(
    item: tuple[str, HarFile, str],
) -> tuple[str, SiteClassification, FilterStats]:
    """Worker-side §4.3 sanitisation + §4.1 classification of one HAR."""
    site, har, model_value = item
    result = read_sessions(har)
    classification = classify_site(
        site, result.records, model=LifetimeModel(model_value)
    )
    return site, classification, result.stats


@dataclass
class HarCorpus:
    """The crawl's output: one (median-load) HAR per reachable site."""

    name: str
    hars: dict[str, HarFile] = field(default_factory=dict)
    unreachable: list[str] = field(default_factory=list)
    #: Stable key of the crawl configuration that produced this corpus
    #: (set by the crawler); classification caching derives from it.
    provenance: str | None = None
    #: Total injected-fault strikes across the crawl, by fault kind
    #: (empty without a fault profile); feeds the resilience taxonomy.
    fault_counts: dict[str, int] = field(default_factory=dict)

    def classify_cache_key(
        self, model: LifetimeModel, name: str | None = None
    ) -> str | None:
        """Cache key for one classification, or ``None`` without provenance."""
        if self.provenance is None:
            return None
        return stable_key(
            "classify-har", self.provenance, model.value,
            name or f"{self.name}-{model.value}",
        )

    def classify(
        self, *, model: LifetimeModel, asdb=None, name: str | None = None,
        executor: Executor | None = None, cache: StudyCache | None = None,
        cache_key: str | None = None,
    ) -> ClassifiedDataset:
        """Sanitize all HARs and classify under ``model``.

        With a ``cache`` (and a crawler-set provenance) the classified
        dataset is loaded from / stored to disk keyed on the crawl
        configuration plus the lifetime model; ``cache_key`` passes a
        precomputed key so callers that already hashed the config for
        item accounting don't pay for it twice.
        """
        key = cache_key
        if key is None and cache is not None:
            key = self.classify_cache_key(model, name)
        if key is not None:
            cached = cache.get("classify", key)
            if cached is not None:
                return cached
        executor = executor or SerialExecutor()
        items = [
            (site, har, model.value) for site, har in self.hars.items()
        ]
        outcomes = executor.map_sites(_sanitize_and_classify, items)
        stats = FilterStats()
        for _, _, site_stats in outcomes:
            stats.merge(site_stats)
        dataset = aggregate_classifications(
            name or f"{self.name}-{model.value}",
            model,
            [(site, classification) for site, classification, _ in outcomes],
            asdb=asdb,
        )
        dataset.filter_stats = stats  # type: ignore[attr-defined]
        if key is not None:
            cache.put("classify", key, dataset)
        return dataset

    def shard_view(self, shard: CrawlShard) -> "HarCorpus":
        """The sub-corpus of one crawl shard, with shard provenance.

        HARs keep their crawl order restricted to the shard's domains;
        provenance is the shard's own cache key, so per-shard
        classifications cache under per-shard keys.  Fault counts are
        not split — the merged corpus keeps the study-wide totals.
        """
        members = set(shard.domains)
        return HarCorpus(
            name=self.name,
            hars={
                site: har for site, har in self.hars.items()
                if site in members
            },
            unreachable=[
                site for site in self.unreachable if site in members
            ],
            provenance=shard.key,
        )


@dataclass
class HttpArchiveCrawler:
    """Visits sites three times and keeps the median-load HAR."""

    ecosystem: Ecosystem
    seed: int = 11
    vantage_country: str = "US"
    noise: HarNoiseConfig = field(default_factory=HarNoiseConfig)
    start_time: float = 0.0
    loads_per_site: int = 3
    observe_s: float = 300.0
    #: Named fault profile injected into every visit (see
    #: :mod:`repro.faults`); ``"none"`` is provably inert.
    fault_profile: str = "none"

    @property
    def site_slot_s(self) -> float:
        """Simulated time reserved per site (visits + inter-load gaps)."""
        return self.loads_per_site * (self.observe_s + 5.0) + 10.0

    def shard_key(
        self, domains: tuple[str, ...], offsets: tuple[int, ...]
    ) -> str:
        """Stable cache key of one crawl shard.

        Covers every knob the shard's output depends on: the world
        identity *of these domains* (pristine ecosystem config plus
        their evolution token — worlds whose churn never touched them
        share keys), the crawl seed, vantage point, noise model,
        schedule knobs, and the shard's domains with their global
        schedule slots.
        """
        return stable_key(
            "har-crawl",
            *self.ecosystem.cache_world_key(domains),
            self.seed,
            self.vantage_country,
            self.noise,
            self.start_time,
            self.loads_per_site,
            self.observe_s,
            self.fault_profile,
            domains,
            offsets,
        )

    def stage_key(self, domains: list[str]) -> str:
        """The 1-shard (whole-list) :meth:`shard_key` of ``domains``."""
        return self.shard_key(tuple(domains), tuple(range(len(domains))))

    def plan_shards(
        self, domains: list[str], *, shards: int = 1,
        cache: StudyCache | None = None, cache_key: str | None = None,
    ) -> list[CrawlShard]:
        """The deterministic shard plan for a crawl over ``domains``.

        Uncached plans skip key hashing entirely; ``cache_key`` passes
        a precomputed whole-list key through to a 1-shard plan.
        """
        if shards == 1 and cache_key is not None:
            return [CrawlShard(
                index=0, domains=tuple(domains),
                offsets=tuple(range(len(domains))), key=cache_key,
                cached=cache.contains("har-crawl", cache_key)
                if cache is not None else False,
            )]
        return plan_crawl_shards(
            domains, shards,
            keyer=self.shard_key if cache is not None else None,
            contains=(
                (lambda key: cache.contains("har-crawl", key))
                if cache is not None else None
            ),
        )

    def _site_task(self, domain: str, offset: int) -> _HaSiteTask:
        return _HaSiteTask(
            ecosystem_config=self.ecosystem.config,
            seed=self.seed,
            domain=domain,
            start_time=self.start_time + offset * self.site_slot_s,
            vantage_country=self.vantage_country,
            noise=self.noise,
            loads_per_site=self.loads_per_site,
            observe_s=self.observe_s,
            fault_profile=self.fault_profile,
        )

    @staticmethod
    def _shard_part(shard: CrawlShard, results: list) -> HarCorpus:
        """One shard's sub-corpus from its site results."""
        part = HarCorpus(name="httparchive", provenance=shard.key)
        for domain, har, counts in results:
            if har is None:
                part.unreachable.append(domain)
            else:
                part.hars[domain] = har
            merge_counts(part.fault_counts, counts)
        return part

    def crawl(
        self, domains: list[str] | None = None,
        *, executor: Executor | None = None, cache: StudyCache | None = None,
        cache_key: str | None = None, shards: int = 1,
        plan: list[CrawlShard] | None = None,
        runlog: "RunContext | None" = None,
    ) -> HarCorpus:
        """Crawl ``domains`` (default: the ecosystem's CrUX-like sample).

        With a ``cache``, shards previously crawled under an identical
        configuration load from disk and only the missing shards visit
        any site; ``cache_key`` passes a precomputed :meth:`stage_key`
        (1-shard runs), ``plan`` a precomputed :meth:`plan_shards`.
        The fold over shard sub-corpora is output-identical to the
        monolithic crawl for every shard count.

        A ``runlog`` (see :mod:`repro.runlog`) journals every shard,
        retries transient failures, and quarantines poisoned shards —
        the fold then simply proceeds without them, and the study's
        coverage block owns up to the gap.
        """
        if domains is None:
            domains = self.ecosystem.httparchive_sample(seed=self.seed)
        if plan is None:
            plan = self.plan_shards(
                domains, shards=shards, cache=cache, cache_key=cache_key
            )
        executor = executor or SerialExecutor()
        parts: dict[int, HarCorpus] = {}
        pending: list[CrawlShard] = []
        for shard in plan:
            if shard.key is not None and cache is not None:
                cached = cache.get("har-crawl", shard.key)
                if cached is not None:
                    parts[shard.index] = cached
                    if runlog is not None:
                        runlog.note_cached("har-crawl", shard)
                    continue
            pending.append(shard)
        if pending and runlog is None:
            prime_ecosystem(self.ecosystem)
            tasks = [
                self._site_task(domain, offset)
                for shard in pending
                for domain, offset in zip(shard.domains, shard.offsets)
            ]
            results = executor.map_sites(_crawl_one_site, tasks)
            position = 0
            for shard in pending:
                part = self._shard_part(
                    shard, results[position:position + len(shard.domains)]
                )
                position += len(shard.domains)
                if shard.key is not None and cache is not None:
                    cache.put("har-crawl", shard.key, part)
                parts[shard.index] = part
        elif pending:
            prime_ecosystem(self.ecosystem)
            for shard in pending:
                tasks = [
                    self._site_task(domain, offset)
                    for domain, offset in zip(shard.domains, shard.offsets)
                ]
                results = runlog.run_shard(
                    "har-crawl", shard, _crawl_one_site, tasks,
                    executor=executor,
                    reattempt=lambda task, n: replace(task, attempt=n),
                )
                if results is None:  # poison quarantine: fold without it
                    continue
                part = self._shard_part(shard, results)
                if shard.key is not None and cache is not None:
                    path = cache.put("har-crawl", shard.key, part)
                    runlog.maybe_rot("har-crawl", shard, path)
                runlog.finish_shard("har-crawl", shard)
                parts[shard.index] = part
        if len(plan) == 1:
            only = parts.get(plan[0].index)
            return only if only is not None else HarCorpus(name="httparchive")
        # Fold shard sub-corpora in bucket order.  Shards partition the
        # domain list, so the union is lossless; everything downstream
        # is order-insensitive (the digest sorts sites, counters add).
        # Quarantined shards are simply absent; the fold provenance
        # hashes the *included* keys, which equals the full-plan hash
        # exactly when nothing was quarantined.
        included = [shard for shard in plan if shard.index in parts]
        merged = HarCorpus(
            name="httparchive",
            provenance=stable_key(
                "har-crawl-fold",
                tuple(shard.key for shard in included),
            ) if included and all(
                shard.key is not None for shard in included
            ) else None,
        )
        for shard in sorted(included, key=lambda shard: shard.index):
            part = parts[shard.index]
            merged.hars.update(part.hars)
            merged.unreachable.extend(part.unreachable)
            merge_counts(merged.fault_counts, tuple(part.fault_counts.items()))
        return merged
