"""The paper's own Alexa Top-N measurements (§4.2.2).

Browsertime-driving-Chromium-87 is modelled as: visit every Alexa
domain once from the university vantage point in Germany, QUIC and
field trials disabled, 300 s page timeout, collecting NetLogs.  Two runs
are performed: one following the Fetch Standard and one with Chromium
patched to ignore the connection pool's credentials flag
(``privacy_mode``) — the §5.3.3 ablation.

A small share of sites is unreachable per run (the paper found ~18 k of
100 k); unreachability is mostly site-persistent with a transient
component, so the two runs' reachable sets overlap almost completely
(the paper reviews "the intersection of websites for comparability").

As with the HTTP Archive crawl, sites are measured independently — each
gets its own time slot, browser and RNG streams derived from
``(seed, run, domain)`` — so a run maps over any
:class:`~repro.runtime.Executor` without changing its output.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.browser.browser import BrowserConfig, ChromiumBrowser
from repro.crawl.classify import ClassifiedDataset, classify_dataset
from repro.crawl.shards import CrawlShard, plan_crawl_shards
from repro.core.session import LifetimeModel, SessionRecord
from repro.faults.plan import FaultPlan, merge_counts
from repro.netlog.events import NetLog
from repro.netlog.parser import parse_sessions
from repro.runtime import Executor, SerialExecutor, ecosystem_for, prime_ecosystem
from repro.store import StudyCache, stable_key
from repro.util.clock import SimClock
from repro.util.rng import RngFactory, stable_hash
from repro.web.ecosystem import Ecosystem, EcosystemConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runlog import RunContext

__all__ = ["AlexaMeasurement", "AlexaRun", "AlexaCrawler"]


@dataclass
class AlexaMeasurement:
    """One site's measurement in one run."""

    domain: str
    unreachable: bool
    records: list[SessionRecord] = field(default_factory=list)
    #: Connections the server closed early with a GOAWAY (extracted from
    #: the NetLog at crawl time, so the log itself need not be kept).
    goaway_connection_ids: tuple[int, ...] = ()
    #: Injected-fault strikes during this site's visit, by kind value
    #: (empty without a fault profile).
    fault_counts: tuple[tuple[str, int], ...] = ()
    #: The raw NetLog; only retained under ``AlexaCrawler.keep_netlogs``
    #: — shipping full logs back from pool workers dwarfs the cost of
    #: the visit itself.
    netlog: NetLog | None = None


@dataclass(frozen=True)
class _AlexaSiteTask:
    """Everything one worker needs to measure one site in one run."""

    ecosystem_config: EcosystemConfig
    seed: int
    run_name: str
    domain: str
    start_time: float
    vantage_country: str
    ignore_privacy_mode: bool
    honor_origin_frame: bool
    observe_s: float
    permanent_unreachable_share: float
    transient_unreachable_share: float
    keep_netlog: bool
    fault_profile: str = "none"
    #: Retry generation (set by the run layer's re-dispatch); feeds
    #: only the attempt-bounded ``worker-crash`` fault, never an RNG
    #: stream, so a task's *output* is attempt-independent.
    attempt: int = 0


def _permanently_down(seed: int, domain: str, share: float) -> bool:
    """Site-persistent unreachability: run-independent, seed-stable."""
    return stable_hash("down", seed, domain) % 10_000 < share * 10_000


def _measure_one_site(task: _AlexaSiteTask) -> AlexaMeasurement:
    """One Browsertime-style visit (runs inside an executor worker)."""
    permanently_down = _permanently_down(
        task.seed, task.domain, task.permanent_unreachable_share
    )
    rng = RngFactory(stable_hash(task.seed, task.run_name, "site", task.domain))
    transient = (
        rng.stream("transient").random() < task.transient_unreachable_share
    )
    if permanently_down or transient:
        return AlexaMeasurement(domain=task.domain, unreachable=True)

    ecosystem = ecosystem_for(task.ecosystem_config)
    plan = FaultPlan.compile(
        task.fault_profile, seed=task.seed, run=task.run_name,
        domain=task.domain,
    )
    if plan is not None and plan.task_crash(task.attempt):
        from repro.runlog.errors import WorkerCrashError

        raise WorkerCrashError(
            f"injected worker crash measuring {task.domain} in "
            f"{task.run_name} (attempt {task.attempt})"
        )
    resolver = ecosystem.make_resolver("internal")
    if plan is not None:
        resolver.faults = plan
    browser = ChromiumBrowser(
        ecosystem=ecosystem,
        resolver=resolver,
        clock=SimClock(task.start_time),
        rng=rng.stream("browser"),
        config=BrowserConfig(
            vantage_country=task.vantage_country,
            ignore_privacy_mode=task.ignore_privacy_mode,
            honor_origin_frame=task.honor_origin_frame,
            observe_s=task.observe_s,
        ),
        faults=plan,
    )
    visit = browser.visit(task.domain)
    counts = plan.counts() if plan is not None else ()
    if visit.unreachable:
        return AlexaMeasurement(
            domain=task.domain, unreachable=True, fault_counts=counts
        )
    parsed = parse_sessions(visit.netlog)
    return AlexaMeasurement(
        domain=task.domain,
        unreachable=False,
        records=parsed.records,
        goaway_connection_ids=tuple(sorted(parsed.goaway_sessions)),
        netlog=visit.netlog if task.keep_netlog else None,
        fault_counts=counts,
    )


@dataclass
class AlexaRun:
    """One full crawl of the Alexa list."""

    name: str
    ignore_privacy_mode: bool
    measurements: dict[str, AlexaMeasurement] = field(default_factory=dict)
    #: Stable key of the crawl configuration that produced this run
    #: (set by the crawler); classification caching derives from it.
    provenance: str | None = None

    @property
    def fault_counts(self) -> dict[str, int]:
        """Injected-fault strikes across the whole run, by kind."""
        totals: dict[str, int] = {}
        for measurement in self.measurements.values():
            merge_counts(totals, measurement.fault_counts)
        return totals

    @property
    def reachable_sites(self) -> list[str]:
        return [
            domain
            for domain, measurement in self.measurements.items()
            if not measurement.unreachable
        ]

    @property
    def unreachable_count(self) -> int:
        return sum(1 for m in self.measurements.values() if m.unreachable)

    def classify_cache_key(
        self, model: LifetimeModel, name: str | None = None,
        sites: list[str] | None = None,
    ) -> str | None:
        """Cache key for one classification, or ``None`` without provenance."""
        if self.provenance is None:
            return None
        return stable_key(
            "classify-alexa", self.provenance, model.value,
            name or f"{self.name}-{model.value}",
            tuple(sites) if sites is not None else None,
        )

    def classify(
        self, *, model: LifetimeModel, asdb=None, name: str | None = None,
        sites: list[str] | None = None, executor: Executor | None = None,
        cache: StudyCache | None = None, cache_key: str | None = None,
    ) -> ClassifiedDataset:
        """Classify (a subset of) the run under ``model``.

        With a ``cache`` (and a crawler-set provenance) the classified
        dataset is loaded from / stored to disk keyed on the crawl
        configuration, the lifetime model and the site subset;
        ``cache_key`` passes a precomputed key so callers that already
        hashed the config for item accounting don't pay for it twice.
        """
        key = cache_key
        if key is None and cache is not None:
            key = self.classify_cache_key(model, name, sites)
        if key is not None:
            cached = cache.get("classify", key)
            if cached is not None:
                return cached
        chosen = sites if sites is not None else self.reachable_sites
        site_records = {
            domain: self.measurements[domain].records
            for domain in chosen
            if domain in self.measurements
            and not self.measurements[domain].unreachable
        }
        dataset = classify_dataset(
            name or f"{self.name}-{model.value}",
            site_records,
            model=model,
            asdb=asdb,
            executor=executor,
        )
        if key is not None:
            cache.put("classify", key, dataset)
        return dataset

    def shard_view(self, shard: CrawlShard) -> "AlexaRun":
        """The sub-run of one crawl shard, with shard provenance.

        Measurements keep their run order restricted to the shard's
        domains; provenance is the shard's own cache key, so per-shard
        classifications cache under per-shard keys.
        """
        members = set(shard.domains)
        return AlexaRun(
            name=self.name,
            ignore_privacy_mode=self.ignore_privacy_mode,
            measurements={
                domain: measurement
                for domain, measurement in self.measurements.items()
                if domain in members
            },
            provenance=shard.key,
        )


@dataclass
class AlexaCrawler:
    """Runs Browsertime-style crawls over the Alexa list."""

    ecosystem: Ecosystem
    seed: int = 23
    vantage_country: str = "DE"
    start_time: float = 1_000_000.0
    observe_s: float = 300.0
    #: Site-persistent unreachability (server gone, blocking us, ...).
    permanent_unreachable_share: float = 0.04
    #: Per-run transient failures (timeouts).
    transient_unreachable_share: float = 0.01
    #: Retain each visit's raw NetLog on the measurement.  The study
    #: pipeline only needs the parsed records and GOAWAY ids, so logs
    #: are dropped by default.
    keep_netlogs: bool = False
    #: Named fault profile injected into every visit (see
    #: :mod:`repro.faults`); ``"none"`` is provably inert.
    fault_profile: str = "none"

    @property
    def site_slot_s(self) -> float:
        """Simulated time reserved per site in a run."""
        return self.observe_s + 10.0

    def _permanently_down(self, domain: str) -> bool:
        return _permanently_down(
            self.seed, domain, self.permanent_unreachable_share
        )

    def shard_key(
        self,
        domains: tuple[str, ...],
        offsets: tuple[int, ...],
        *,
        run_name: str,
        ignore_privacy_mode: bool = False,
        honor_origin_frame: bool = False,
        run_offset: float = 0.0,
    ) -> str:
        """Stable cache key of one shard of one run configuration.

        Like the HTTP Archive shard key: the shard domains' world
        identity (pristine config + evolution token), the run knobs,
        and the domains with their global schedule slots.
        """
        return stable_key(
            "alexa-crawl",
            *self.ecosystem.cache_world_key(domains),
            self.seed,
            self.vantage_country,
            self.start_time,
            self.observe_s,
            self.permanent_unreachable_share,
            self.transient_unreachable_share,
            self.keep_netlogs,
            self.fault_profile,
            run_name,
            ignore_privacy_mode,
            honor_origin_frame,
            run_offset,
            domains,
            offsets,
        )

    def stage_key(
        self,
        domains: list[str],
        *,
        run_name: str,
        ignore_privacy_mode: bool = False,
        honor_origin_frame: bool = False,
        run_offset: float = 0.0,
    ) -> str:
        """The 1-shard (whole-list) :meth:`shard_key` of ``domains``."""
        return self.shard_key(
            tuple(domains), tuple(range(len(domains))),
            run_name=run_name, ignore_privacy_mode=ignore_privacy_mode,
            honor_origin_frame=honor_origin_frame, run_offset=run_offset,
        )

    def plan_shards(
        self,
        domains: list[str],
        *,
        shards: int = 1,
        run_name: str,
        ignore_privacy_mode: bool = False,
        honor_origin_frame: bool = False,
        run_offset: float = 0.0,
        cache: StudyCache | None = None,
        cache_key: str | None = None,
    ) -> list[CrawlShard]:
        """The deterministic shard plan for one run over ``domains``."""
        if shards == 1 and cache_key is not None:
            return [CrawlShard(
                index=0, domains=tuple(domains),
                offsets=tuple(range(len(domains))), key=cache_key,
                cached=cache.contains("alexa-crawl", cache_key)
                if cache is not None else False,
            )]

        def keyer(members: tuple[str, ...], offsets: tuple[int, ...]) -> str:
            return self.shard_key(
                members, offsets, run_name=run_name,
                ignore_privacy_mode=ignore_privacy_mode,
                honor_origin_frame=honor_origin_frame,
                run_offset=run_offset,
            )

        return plan_crawl_shards(
            domains, shards,
            keyer=keyer if cache is not None else None,
            contains=(
                (lambda key: cache.contains("alexa-crawl", key))
                if cache is not None else None
            ),
        )

    def _site_task(
        self, domain: str, offset: int, *, run_name: str,
        ignore_privacy_mode: bool, honor_origin_frame: bool,
        run_offset: float,
    ) -> _AlexaSiteTask:
        return _AlexaSiteTask(
            ecosystem_config=self.ecosystem.config,
            seed=self.seed,
            run_name=run_name,
            domain=domain,
            start_time=(
                self.start_time + run_offset + offset * self.site_slot_s
            ),
            vantage_country=self.vantage_country,
            ignore_privacy_mode=ignore_privacy_mode,
            honor_origin_frame=honor_origin_frame,
            observe_s=self.observe_s,
            permanent_unreachable_share=self.permanent_unreachable_share,
            transient_unreachable_share=self.transient_unreachable_share,
            keep_netlog=self.keep_netlogs,
            fault_profile=self.fault_profile,
        )

    @staticmethod
    def _shard_part(
        shard: CrawlShard, results: list, *, run_name: str,
        ignore_privacy_mode: bool,
    ) -> AlexaRun:
        """One shard's sub-run from its site measurements."""
        part = AlexaRun(
            name=run_name, ignore_privacy_mode=ignore_privacy_mode,
            provenance=shard.key,
        )
        for measurement in results:
            part.measurements[measurement.domain] = measurement
        return part

    def run(
        self,
        domains: list[str],
        *,
        run_name: str,
        ignore_privacy_mode: bool = False,
        honor_origin_frame: bool = False,
        run_offset: float = 0.0,
        executor: Executor | None = None,
        cache: StudyCache | None = None,
        cache_key: str | None = None,
        shards: int = 1,
        plan: list[CrawlShard] | None = None,
        runlog: "RunContext | None" = None,
    ) -> AlexaRun:
        """One crawl over ``domains`` with the given browser patch.

        With a ``cache``, shards previously crawled under an identical
        configuration load from disk and only the missing shards visit
        any site; ``cache_key`` passes a precomputed :meth:`stage_key`
        (1-shard runs), ``plan`` a precomputed :meth:`plan_shards`.
        A ``runlog`` journals, retries and — on poison — quarantines
        shards exactly like the HTTP Archive crawl.
        """
        if plan is None:
            plan = self.plan_shards(
                domains, shards=shards, run_name=run_name,
                ignore_privacy_mode=ignore_privacy_mode,
                honor_origin_frame=honor_origin_frame,
                run_offset=run_offset, cache=cache, cache_key=cache_key,
            )
        executor = executor or SerialExecutor()

        def site_task(domain: str, offset: int) -> _AlexaSiteTask:
            return self._site_task(
                domain, offset, run_name=run_name,
                ignore_privacy_mode=ignore_privacy_mode,
                honor_origin_frame=honor_origin_frame,
                run_offset=run_offset,
            )

        parts: dict[int, AlexaRun] = {}
        pending: list[CrawlShard] = []
        for shard in plan:
            if shard.key is not None and cache is not None:
                cached = cache.get("alexa-crawl", shard.key)
                if cached is not None:
                    parts[shard.index] = cached
                    if runlog is not None:
                        runlog.note_cached(run_name, shard)
                    continue
            pending.append(shard)
        if pending and runlog is None:
            prime_ecosystem(self.ecosystem)
            tasks = [
                site_task(domain, offset)
                for shard in pending
                for domain, offset in zip(shard.domains, shard.offsets)
            ]
            results = executor.map_sites(_measure_one_site, tasks)
            position = 0
            for shard in pending:
                part = self._shard_part(
                    shard, results[position:position + len(shard.domains)],
                    run_name=run_name,
                    ignore_privacy_mode=ignore_privacy_mode,
                )
                position += len(shard.domains)
                if shard.key is not None and cache is not None:
                    cache.put("alexa-crawl", shard.key, part)
                parts[shard.index] = part
        elif pending:
            prime_ecosystem(self.ecosystem)
            for shard in pending:
                tasks = [
                    site_task(domain, offset)
                    for domain, offset in zip(shard.domains, shard.offsets)
                ]
                results = runlog.run_shard(
                    run_name, shard, _measure_one_site, tasks,
                    executor=executor,
                    reattempt=lambda task, n: replace(task, attempt=n),
                )
                if results is None:  # poison quarantine: fold without it
                    continue
                part = self._shard_part(
                    shard, results, run_name=run_name,
                    ignore_privacy_mode=ignore_privacy_mode,
                )
                if shard.key is not None and cache is not None:
                    path = cache.put("alexa-crawl", shard.key, part)
                    runlog.maybe_rot(run_name, shard, path)
                runlog.finish_shard(run_name, shard)
                parts[shard.index] = part
        if len(plan) == 1:
            only = parts.get(plan[0].index)
            return only if only is not None else AlexaRun(
                name=run_name, ignore_privacy_mode=ignore_privacy_mode
            )
        included = [shard for shard in plan if shard.index in parts]
        merged = AlexaRun(
            name=run_name,
            ignore_privacy_mode=ignore_privacy_mode,
            provenance=stable_key(
                "alexa-crawl-fold",
                tuple(shard.key for shard in included),
            ) if included and all(
                shard.key is not None for shard in included
            ) else None,
        )
        for shard in sorted(included, key=lambda shard: shard.index):
            merged.measurements.update(parts[shard.index].measurements)
        return merged
