"""The paper's own Alexa Top-N measurements (§4.2.2).

Browsertime-driving-Chromium-87 is modelled as: visit every Alexa
domain once from the university vantage point in Germany, QUIC and
field trials disabled, 300 s page timeout, collecting NetLogs.  Two runs
are performed: one following the Fetch Standard and one with Chromium
patched to ignore the connection pool's credentials flag
(``privacy_mode``) — the §5.3.3 ablation.

A small share of sites is unreachable per run (the paper found ~18 k of
100 k); unreachability is mostly site-persistent with a transient
component, so the two runs' reachable sets overlap almost completely
(the paper reviews "the intersection of websites for comparability").
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.browser.browser import BrowserConfig, ChromiumBrowser
from repro.crawl.classify import ClassifiedDataset, classify_dataset
from repro.core.session import LifetimeModel, SessionRecord
from repro.netlog.events import NetLog
from repro.netlog.parser import parse_sessions
from repro.util.clock import SimClock
from repro.util.rng import RngFactory, stable_hash
from repro.web.ecosystem import Ecosystem

__all__ = ["AlexaMeasurement", "AlexaRun", "AlexaCrawler"]


@dataclass
class AlexaMeasurement:
    """One site's measurement in one run."""

    domain: str
    unreachable: bool
    records: list[SessionRecord] = field(default_factory=list)
    netlog: NetLog | None = None


@dataclass
class AlexaRun:
    """One full crawl of the Alexa list."""

    name: str
    ignore_privacy_mode: bool
    measurements: dict[str, AlexaMeasurement] = field(default_factory=dict)

    @property
    def reachable_sites(self) -> list[str]:
        return [
            domain
            for domain, measurement in self.measurements.items()
            if not measurement.unreachable
        ]

    @property
    def unreachable_count(self) -> int:
        return sum(1 for m in self.measurements.values() if m.unreachable)

    def classify(
        self, *, model: LifetimeModel, asdb=None, name: str | None = None,
        sites: list[str] | None = None,
    ) -> ClassifiedDataset:
        """Classify (a subset of) the run under ``model``."""
        chosen = sites if sites is not None else self.reachable_sites
        site_records = {
            domain: self.measurements[domain].records
            for domain in chosen
            if domain in self.measurements
            and not self.measurements[domain].unreachable
        }
        return classify_dataset(
            name or f"{self.name}-{model.value}",
            site_records,
            model=model,
            asdb=asdb,
        )


@dataclass
class AlexaCrawler:
    """Runs Browsertime-style crawls over the Alexa list."""

    ecosystem: Ecosystem
    seed: int = 23
    vantage_country: str = "DE"
    start_time: float = 1_000_000.0
    observe_s: float = 300.0
    #: Site-persistent unreachability (server gone, blocking us, ...).
    permanent_unreachable_share: float = 0.04
    #: Per-run transient failures (timeouts).
    transient_unreachable_share: float = 0.01

    def _permanently_down(self, domain: str) -> bool:
        return (
            stable_hash("down", self.seed, domain) % 10_000
            < self.permanent_unreachable_share * 10_000
        )

    def run(
        self,
        domains: list[str],
        *,
        run_name: str,
        ignore_privacy_mode: bool = False,
        honor_origin_frame: bool = False,
        run_offset: float = 0.0,
    ) -> AlexaRun:
        """One crawl over ``domains`` with the given browser patch."""
        rng = RngFactory(stable_hash(self.seed, run_name))
        clock = SimClock(self.start_time + run_offset)
        resolver = self.ecosystem.make_resolver("internal")
        browser = ChromiumBrowser(
            ecosystem=self.ecosystem,
            resolver=resolver,
            clock=clock,
            rng=rng.stream("browser"),
            config=BrowserConfig(
                vantage_country=self.vantage_country,
                ignore_privacy_mode=ignore_privacy_mode,
                honor_origin_frame=honor_origin_frame,
                observe_s=self.observe_s,
            ),
        )
        transient_rng = rng.stream("transient")
        gap_rng = rng.stream("gaps")
        run = AlexaRun(name=run_name, ignore_privacy_mode=ignore_privacy_mode)
        for domain in domains:
            if self._permanently_down(domain) or (
                transient_rng.random() < self.transient_unreachable_share
            ):
                run.measurements[domain] = AlexaMeasurement(
                    domain=domain, unreachable=True
                )
                continue
            visit = browser.visit(domain)
            if visit.unreachable:
                run.measurements[domain] = AlexaMeasurement(
                    domain=domain, unreachable=True
                )
                continue
            parsed = parse_sessions(visit.netlog)
            run.measurements[domain] = AlexaMeasurement(
                domain=domain,
                unreachable=False,
                records=parsed.records,
                netlog=visit.netlog,
            )
            clock.advance(gap_rng.uniform(1.0, 5.0))
        return run
