"""Turning raw measurements into classified datasets.

A *dataset* in the paper's sense is one column group of Table 1: a set
of per-site session records evaluated under one lifetime model.  This
module owns the shared fold: classify every site, aggregate the
corpus report, and build the attribution index (origins, issuers, ASes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.attribution import AttributionIndex
from repro.core.classifier import SiteClassification, classify_site
from repro.core.report import CorpusReport
from repro.core.session import LifetimeModel, SessionRecord
from repro.net.asdb import AsDatabase

__all__ = ["ClassifiedDataset", "classify_dataset"]


@dataclass
class ClassifiedDataset:
    """One fully classified corpus under one lifetime model."""

    name: str
    model: LifetimeModel
    report: CorpusReport
    attribution: AttributionIndex
    classifications: dict[str, SiteClassification] = field(default_factory=dict)

    def subset(self, sites: Iterable[str], *, name: str) -> "ClassifiedDataset":
        """Re-aggregate over a site subset (the overlap analyses)."""
        picked = {
            site: classification
            for site, classification in self.classifications.items()
            if site in set(sites)
        }
        report = CorpusReport(name=name)
        attribution = AttributionIndex()
        for classification in picked.values():
            report.add_site(classification)
            attribution.add_site(classification)
        out = ClassifiedDataset(
            name=name,
            model=self.model,
            report=report,
            attribution=attribution,
            classifications=picked,
        )
        return out


def classify_dataset(
    name: str,
    site_records: dict[str, list[SessionRecord]],
    *,
    model: LifetimeModel,
    asdb: AsDatabase | None = None,
) -> ClassifiedDataset:
    """Classify every site of a corpus and aggregate."""
    report = CorpusReport(name=name)
    attribution = AttributionIndex()
    classifications: dict[str, SiteClassification] = {}
    for site, records in site_records.items():
        classification = classify_site(site, records, model=model)
        classifications[site] = classification
        report.add_site(classification)
        attribution.add_site(classification)
        if asdb is not None:
            attribution.attribute_ases(asdb, classification)
    return ClassifiedDataset(
        name=name,
        model=model,
        report=report,
        attribution=attribution,
        classifications=classifications,
    )
