"""Turning raw measurements into classified datasets.

A *dataset* in the paper's sense is one column group of Table 1: a set
of per-site session records evaluated under one lifetime model.  This
module owns the shared fold: classify every site, aggregate the
corpus report, and build the attribution index (origins, issuers, ASes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.attribution import AttributionIndex
from repro.core.classifier import SiteClassification, classify_site
from repro.core.report import CorpusReport
from repro.core.session import LifetimeModel, SessionRecord
from repro.net.asdb import AsDatabase
from repro.runtime import Executor, SerialExecutor

__all__ = [
    "ClassifiedDataset",
    "classify_dataset",
    "aggregate_classifications",
    "merge_classified_datasets",
]


@dataclass
class ClassifiedDataset:
    """One fully classified corpus under one lifetime model."""

    name: str
    model: LifetimeModel
    report: CorpusReport
    attribution: AttributionIndex
    classifications: dict[str, SiteClassification] = field(default_factory=dict)

    def subset(self, sites: Iterable[str], *, name: str) -> "ClassifiedDataset":
        """Re-aggregate over a site subset (the overlap analyses)."""
        picked = {
            site: classification
            for site, classification in self.classifications.items()
            if site in set(sites)
        }
        report = CorpusReport(name=name)
        attribution = AttributionIndex()
        for classification in picked.values():
            report.add_site(classification)
            attribution.add_site(classification)
        out = ClassifiedDataset(
            name=name,
            model=self.model,
            report=report,
            attribution=attribution,
            classifications=picked,
        )
        return out


def _classify_item(
    item: tuple[str, list[SessionRecord], str],
) -> SiteClassification:
    """Classify one site (runs inside an executor worker)."""
    site, records, model_value = item
    return classify_site(site, records, model=LifetimeModel(model_value))


def aggregate_classifications(
    name: str,
    model: LifetimeModel,
    site_classifications: Iterable[tuple[str, SiteClassification]],
    *,
    asdb: AsDatabase | None = None,
) -> ClassifiedDataset:
    """Fold per-site classifications into one dataset.

    Aggregation is cheap and order-sensitive only in its iteration
    order, so it always runs serially in the caller, in the order the
    sites were submitted — which keeps the result independent of the
    executor that produced the classifications.
    """
    report = CorpusReport(name=name)
    attribution = AttributionIndex()
    classifications: dict[str, SiteClassification] = {}
    for site, classification in site_classifications:
        classifications[site] = classification
        report.add_site(classification)
        attribution.add_site(classification)
        if asdb is not None:
            attribution.attribute_ases(asdb, classification)
    return ClassifiedDataset(
        name=name,
        model=model,
        report=report,
        attribution=attribution,
        classifications=classifications,
    )


def merge_classified_datasets(
    name: str,
    model: LifetimeModel,
    partials: Iterable[ClassifiedDataset],
    *,
    asdb: AsDatabase | None = None,
) -> ClassifiedDataset:
    """Fold per-shard partial datasets into the whole.

    Rebuilds the report and attribution index from the concatenated
    per-site classifications, so the merge is a pure function of the
    partials' contents: folding one partial reproduces it, and folding
    a disjoint site partition reproduces the monolithic aggregate.
    Per-shard ``filter_stats`` (the HAR sanitisation counters) merge
    additively when present.
    """
    pairs: list[tuple[str, SiteClassification]] = []
    stats = None
    for partial in partials:
        pairs.extend(partial.classifications.items())
        partial_stats = getattr(partial, "filter_stats", None)
        if partial_stats is not None:
            if stats is None:
                stats = type(partial_stats)()
            stats.merge(partial_stats)
    dataset = aggregate_classifications(name, model, pairs, asdb=asdb)
    if stats is not None:
        dataset.filter_stats = stats  # type: ignore[attr-defined]
    return dataset


def classify_dataset(
    name: str,
    site_records: dict[str, list[SessionRecord]],
    *,
    model: LifetimeModel,
    asdb: AsDatabase | None = None,
    executor: Executor | None = None,
) -> ClassifiedDataset:
    """Classify every site of a corpus and aggregate."""
    executor = executor or SerialExecutor()
    sites = list(site_records)
    items = [(site, site_records[site], model.value) for site in sites]
    classified = executor.map_sites(_classify_item, items)
    return aggregate_classifications(
        name, model, zip(sites, classified), asdb=asdb
    )
