"""Dataset intersection (Appendix A.3).

The HTTP Archive and Alexa corpora visit different site sets; to compare
vantage points the paper intersects them by visited URL and re-runs the
aggregation on the overlap (Tables 7–10).
"""

from __future__ import annotations

from repro.crawl.classify import ClassifiedDataset

__all__ = ["overlap_sites", "overlap_datasets"]


def overlap_sites(*datasets: ClassifiedDataset) -> set[str]:
    """Sites present (and classified) in every dataset."""
    if not datasets:
        return set()
    sites = set(datasets[0].classifications)
    for dataset in datasets[1:]:
        sites &= set(dataset.classifications)
    return sites


def overlap_datasets(
    a: ClassifiedDataset, b: ClassifiedDataset, *, suffix: str = "overlap"
) -> tuple[ClassifiedDataset, ClassifiedDataset]:
    """Both datasets restricted to their common sites."""
    sites = overlap_sites(a, b)
    return (
        a.subset(sites, name=f"{a.name}-{suffix}"),
        b.subset(sites, name=f"{b.name}-{suffix}"),
    )
