"""Measurement harnesses: HTTP Archive crawl, Alexa runs, overlap."""

from repro.crawl.alexa import AlexaCrawler, AlexaMeasurement, AlexaRun
from repro.crawl.classify import (
    ClassifiedDataset,
    classify_dataset,
    merge_classified_datasets,
)
from repro.crawl.httparchive import HarCorpus, HttpArchiveCrawler
from repro.crawl.overlap import overlap_datasets, overlap_sites
from repro.crawl.shards import CrawlShard, pending_items, plan_crawl_shards

__all__ = [
    "AlexaCrawler",
    "AlexaMeasurement",
    "AlexaRun",
    "ClassifiedDataset",
    "classify_dataset",
    "merge_classified_datasets",
    "CrawlShard",
    "pending_items",
    "plan_crawl_shards",
    "HarCorpus",
    "HttpArchiveCrawler",
    "overlap_datasets",
    "overlap_sites",
]
