"""Measurement harnesses: HTTP Archive crawl, Alexa runs, overlap."""

from repro.crawl.alexa import AlexaCrawler, AlexaMeasurement, AlexaRun
from repro.crawl.classify import ClassifiedDataset, classify_dataset
from repro.crawl.httparchive import HarCorpus, HttpArchiveCrawler
from repro.crawl.overlap import overlap_datasets, overlap_sites

__all__ = [
    "AlexaCrawler",
    "AlexaMeasurement",
    "AlexaRun",
    "ClassifiedDataset",
    "classify_dataset",
    "HarCorpus",
    "HttpArchiveCrawler",
    "overlap_datasets",
    "overlap_sites",
]
