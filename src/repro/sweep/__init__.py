"""The scenario sweep engine: grids of studies over one cached store."""

from repro.sweep.runner import (
    CellResult,
    DatasetSummary,
    SweepResult,
    run_sweep,
    summarize_cell,
    summarize_dataset,
)
from repro.sweep.spec import SweepCell, SweepSpec

__all__ = [
    "CellResult",
    "DatasetSummary",
    "SweepCell",
    "SweepSpec",
    "SweepResult",
    "run_sweep",
    "summarize_cell",
    "summarize_dataset",
]
