"""Scenario-matrix specifications.

A :class:`SweepSpec` describes a grid of study configurations: a base
:class:`~repro.analysis.study.StudyConfig`, a list of seeds, and any
number of *axes* — named ``StudyConfig`` fields with the values to
sweep them over.  :meth:`SweepSpec.cells` expands the spec into the
cartesian product, variant-major (all seeds of one variant are
adjacent), which is the grouping the robustness report aggregates over.

Axes come either from code (any field, any values) or from the CLI's
``--grid field=v1,v2`` syntax parsed by :meth:`SweepSpec.parse_axes`;
tuple-valued fields (``har_models``, ``alexa_variants``) join their
elements with ``+``, e.g. ``--grid alexa_variants=fetch+nofetch,fetch``.
Fault and evolution scenarios sweep like any other axis (a policy only
applies when ``epochs`` is positive, so pair the two):
``--grid fault_profile=none,flaky-dns``,
``--epochs 2 --grid evolution_policy=none,mixed``, and the HTTP/3
rollout axis sweeps named or fractional adoption profiles:
``--grid h3_profile=none,cdn-first,broad,adopt-0.25``.

>>> from repro.sweep import SweepSpec
>>> SweepSpec.parse_axes(["n_sites=120,240", "evolution_policy=none,mixed"])
(('n_sites', (120, 240)), ('evolution_policy', ('none', 'mixed')))
>>> spec = SweepSpec(seeds=(7, 8), axes=SweepSpec.parse_axes(["epochs=0,2"]))
>>> spec.n_cells
4
>>> [cell.label() for cell in spec.cells()]
['seed=7 epochs=0', 'seed=8 epochs=0', 'seed=7 epochs=2', 'seed=8 epochs=2']
>>> SweepSpec.parse_axes(["bogus=1"])
Traceback (most recent call last):
    ...
ValueError: field 'bogus' is not sweepable from the CLI; choose from \
['alexa_share', 'alexa_variants', 'dns_study_days', 'epochs', \
'evolution_policy', 'executor', 'fault_profile', 'h3_profile', \
'ha_sample_share', 'har_models', 'n_sites', 'parallelism', 'shards']
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, fields, replace

from repro.analysis.study import StudyConfig

__all__ = ["SweepCell", "SweepSpec"]


def _plus_tuple(text: str) -> tuple[str, ...]:
    return tuple(part for part in text.split("+") if part)


#: CLI value parsers per sweepable StudyConfig field.
_AXIS_PARSERS = {
    "n_sites": int,
    "alexa_share": float,
    "ha_sample_share": float,
    "dns_study_days": float,
    "executor": str,
    "parallelism": int,
    "har_models": _plus_tuple,
    "alexa_variants": _plus_tuple,
    "fault_profile": str,
    "epochs": int,
    "evolution_policy": str,
    "h3_profile": str,
    "shards": int,
}

_CONFIG_FIELDS = frozenset(spec.name for spec in fields(StudyConfig))


@dataclass(frozen=True)
class SweepCell:
    """One expanded grid cell: a config plus its axis assignments."""

    config: StudyConfig
    #: The non-seed axis assignments that produced this cell, in axis
    #: order; empty for a pure seed sweep.
    variant: tuple[tuple[str, object], ...] = ()

    @property
    def seed(self) -> int:
        return self.config.seed

    def variant_label(self) -> str:
        """A stable human label for the cell's variant group."""
        if not self.variant:
            return "base"
        return " ".join(f"{name}={_render(value)}" for name, value in self.variant)

    def label(self) -> str:
        parts = [f"seed={self.seed}"]
        if self.variant:
            parts.append(self.variant_label())
        return " ".join(parts)


def _render(value: object) -> str:
    if isinstance(value, tuple):
        return "+".join(str(item) for item in value)
    return str(value)


@dataclass(frozen=True)
class SweepSpec:
    """A scenario grid over :class:`StudyConfig`."""

    base: StudyConfig = field(default_factory=StudyConfig)
    seeds: tuple[int, ...] = (7,)
    #: Ordered axes: ``((field_name, (value, ...)), ...)``.
    axes: tuple[tuple[str, tuple], ...] = ()

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ValueError("a sweep needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise ValueError(f"duplicate seeds in {self.seeds!r}")
        seen = set()
        for name, values in self.axes:
            if name == "seed":
                raise ValueError("sweep seeds via `seeds`, not a grid axis")
            if name not in _CONFIG_FIELDS:
                raise ValueError(
                    f"unknown StudyConfig field {name!r}; sweepable fields: "
                    f"{sorted(_CONFIG_FIELDS - {'seed'})}"
                )
            if name in seen:
                raise ValueError(f"duplicate grid axis {name!r}")
            if not values:
                raise ValueError(f"grid axis {name!r} has no values")
            seen.add(name)

    @classmethod
    def parse_axes(
        cls, specs: list[str]
    ) -> tuple[tuple[str, tuple], ...]:
        """Parse CLI ``field=v1,v2`` axis specs with typed values."""
        axes = []
        for spec in specs:
            name, separator, values_text = spec.partition("=")
            name = name.strip()
            if not separator or not values_text:
                raise ValueError(
                    f"bad grid axis {spec!r}; expected field=value1,value2"
                )
            parser = _AXIS_PARSERS.get(name)
            if parser is None:
                raise ValueError(
                    f"field {name!r} is not sweepable from the CLI; "
                    f"choose from {sorted(_AXIS_PARSERS)}"
                )
            try:
                values = tuple(
                    parser(part.strip()) for part in values_text.split(",")
                )
            except ValueError as error:
                raise ValueError(f"bad value in grid axis {spec!r}: {error}")
            axes.append((name, values))
        return tuple(axes)

    @property
    def n_cells(self) -> int:
        cells = len(self.seeds)
        for _, values in self.axes:
            cells *= len(values)
        return cells

    def cells(self) -> list[SweepCell]:
        """Expand the grid, variant-major, seeds innermost.

        Every cell's config is the base with the axis fields and the
        seed replaced; cell configs validate eagerly so a bad axis
        value fails before any study runs.
        """
        expanded = []
        value_lists = [values for _, values in self.axes]
        names = [name for name, _ in self.axes]
        for combination in itertools.product(*value_lists):
            assignments = tuple(zip(names, combination))
            for seed in self.seeds:
                config = replace(
                    self.base, seed=seed, **dict(assignments)
                )
                config.validate()
                expanded.append(SweepCell(config=config, variant=assignments))
        return expanded
