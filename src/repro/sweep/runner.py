"""Executing a sweep: many study cells, one result bundle.

Each cell runs the full study pipeline (through the shared executor
fleet and, when given, the content-addressed cache) and is immediately
reduced to a compact :class:`CellResult` — digest, headline statistics,
per-dataset Table-1 numbers, stage timings — so a sweep's memory stays
bounded by its summaries, not by whole studies.

Cells that ablate away datasets the headline needs (e.g. an
``alexa_variants=fetch`` cell has no ``alexa-nofetch``) record
``headline=None`` and still contribute their per-dataset numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.analysis.digest import study_digest
from repro.analysis.headline import HeadlineStats, headline
from repro.analysis.study import Study
from repro.core.causes import Cause
from repro.runlog import RunCoverage
from repro.runtime import Executor, StageTimings
from repro.store import StudyCache
from repro.sweep.spec import SweepCell, SweepSpec

__all__ = [
    "DatasetSummary",
    "CellResult",
    "SweepResult",
    "run_sweep",
    "summarize_cell",
    "summarize_dataset",
]


@dataclass(frozen=True)
class DatasetSummary:
    """One dataset's Table-1 numbers, detached from the study."""

    name: str
    h2_sites: int
    h2_connections: int
    redundant_sites: int
    redundant_connections: int
    redundant_site_share: float
    cause_sites: dict[str, int]
    cause_connections: dict[str, int]

    @classmethod
    def merge(cls, partials: Sequence["DatasetSummary"]) -> "DatasetSummary":
        """Fold per-shard partial summaries into the whole.

        Counts add; the site share is recomputed from the merged
        counts (a mean of per-shard shares would weight small shards
        wrongly).  Associative and order-insensitive, so any fold tree
        over the same partials produces the same summary.
        """
        if not partials:
            raise ValueError("cannot merge zero dataset summaries")
        names = {partial.name for partial in partials}
        if len(names) != 1:
            raise ValueError(f"cannot merge different datasets: {names}")
        h2_sites = sum(partial.h2_sites for partial in partials)
        redundant_sites = sum(partial.redundant_sites for partial in partials)
        cause_sites: dict[str, int] = {}
        cause_connections: dict[str, int] = {}
        for partial in partials:
            for cause, count in partial.cause_sites.items():
                cause_sites[cause] = cause_sites.get(cause, 0) + count
            for cause, count in partial.cause_connections.items():
                cause_connections[cause] = (
                    cause_connections.get(cause, 0) + count
                )
        return cls(
            name=partials[0].name,
            h2_sites=h2_sites,
            h2_connections=sum(p.h2_connections for p in partials),
            redundant_sites=redundant_sites,
            redundant_connections=sum(
                p.redundant_connections for p in partials
            ),
            redundant_site_share=(
                redundant_sites / h2_sites if h2_sites else 0.0
            ),
            cause_sites=cause_sites,
            cause_connections=cause_connections,
        )


@dataclass(frozen=True)
class CellResult:
    """Everything the robustness report needs from one cell."""

    cell: SweepCell
    digest: str
    headline: HeadlineStats | None
    datasets: dict[str, DatasetSummary]
    timings: StageTimings
    #: Shard coverage of the cell's run: ``None`` for cacheless sweeps,
    #: partial when the run layer quarantined shards (the robustness
    #: report flags such cells instead of treating them as complete).
    coverage: RunCoverage | None = None


@dataclass
class SweepResult:
    """All cell results of one sweep execution."""

    spec: SweepSpec
    cells: list[CellResult] = field(default_factory=list)
    cache: StudyCache | None = None

    def timings(self) -> StageTimings:
        """Stage timings aggregated over every cell."""
        return StageTimings.merged(result.timings for result in self.cells)

    def by_variant(self) -> list[tuple[str, list[CellResult]]]:
        """Cells grouped by variant label, preserving grid order."""
        groups: dict[str, list[CellResult]] = {}
        for result in self.cells:
            groups.setdefault(result.cell.variant_label(), []).append(result)
        return list(groups.items())


def summarize_dataset(name: str, dataset) -> DatasetSummary:
    """Reduce one classified dataset to its Table-1 numbers."""
    report = dataset.report
    return DatasetSummary(
        name=name,
        h2_sites=report.h2_sites,
        h2_connections=report.h2_connections,
        redundant_sites=report.redundant_sites,
        redundant_connections=report.redundant_connections,
        redundant_site_share=report.redundant_site_share(),
        cause_sites={
            cause.value: report.by_cause[cause].sites for cause in Cause
        },
        cause_connections={
            cause.value: report.by_cause[cause].connections for cause in Cause
        },
    )


def summarize_cell(
    cell: SweepCell, study: Study, timings: StageTimings
) -> CellResult:
    """Reduce one cell's study to its compact :class:`CellResult`.

    Shared by :func:`run_sweep` and the serve layer, which drives cells
    itself so it can stream per-shard progress.
    """
    try:
        stats = headline(study)
    except KeyError:
        # The cell's variant ablated a dataset the headline needs.
        stats = None
    return CellResult(
        cell=cell,
        digest=study_digest(study),
        headline=stats,
        datasets={
            name: summarize_dataset(name, dataset)
            for name, dataset in study.datasets.items()
        },
        timings=timings,
        coverage=study.coverage,
    )


def run_sweep(
    spec: SweepSpec,
    *,
    cache: StudyCache | None = None,
    executor: Executor | None = None,
    progress: Callable[[str], None] | None = None,
    resume: bool = False,
    strict: bool = False,
) -> SweepResult:
    """Run every cell of ``spec`` and collect the summaries.

    One executor (the caller's, or one built from the base config) is
    shared across all cells; only when the grid sweeps the ``executor``
    or ``parallelism`` fields does each cell build its own.  The cache,
    when given, is shared too — cells with common stage configurations
    (same crawl under different lifetime models, re-runs of a warm
    sweep) skip the corresponding work entirely.

    ``resume`` and ``strict`` thread through to every cell's
    :meth:`Study.run`: each cell journals under its own run id, so an
    interrupted sweep resumed with the same spec replays finished
    cells from cache and finished shards from their journals.
    """
    cells = spec.cells()
    axis_names = {name for name, _ in spec.axes}
    per_cell_executors = (
        executor is None and bool({"executor", "parallelism"} & axis_names)
    )
    owns_shared = executor is None and not per_cell_executors
    shared = (
        executor if executor is not None
        else spec.base.make_executor() if not per_cell_executors
        else None
    )
    result = SweepResult(spec=spec, cache=cache)
    try:
        for index, cell in enumerate(cells):
            timings = StageTimings()
            if per_cell_executors:
                with cell.config.make_executor() as cell_executor:
                    study = Study.run(
                        cell.config, executor=cell_executor,
                        timings=timings, cache=cache,
                        resume=resume, strict=strict,
                    )
            else:
                study = Study.run(
                    cell.config, executor=shared, timings=timings, cache=cache,
                    resume=resume, strict=strict,
                )
            summary = summarize_cell(cell, study, timings)
            result.cells.append(summary)
            if progress is not None:
                partial = (
                    "  PARTIAL"
                    if summary.coverage is not None
                    and not summary.coverage.complete else ""
                )
                progress(
                    f"[{index + 1}/{len(cells)}] {cell.label()}  "
                    f"digest={summary.digest[:12]}  "
                    f"{timings.total_seconds:.2f} s{partial}"
                )
    finally:
        if owns_shared and shared is not None:
            shared.close()
    return result
