"""End-to-end study benchmark.

Runs the full pipeline serially at a named scale and reports wall
clock, per-stage timings, whole-process peak RSS and the study digest.
The digest is the point: a benchmark run doubles as proof that whatever
was optimized since the last record still produces byte-identical
measurements.

The world cache (:func:`repro.runtime.ecosystem_for`) is cleared before
every run so repeats measure the full cold pipeline, not a warm
``generate-ecosystem`` stage.
"""

from __future__ import annotations

import resource
import time
from dataclasses import dataclass, field

from repro.analysis.digest import study_digest
from repro.analysis.study import Study, StudyConfig
from repro.runtime import StageTimings, clear_ecosystem_cache

__all__ = ["SCALES", "PipelineRun", "run_pipeline_bench"]

#: Named benchmark scales.  ``golden`` is the config the regression
#: snapshots pin; ``smoke`` is small enough for CI; ``stress`` is the
#: scale where optimization wins actually matter.  The ``-sharded``
#: twins run the same studies through the shard-and-fold path — their
#: digests must equal the unsharded entries at the same scale, so the
#: benchmark history doubles as a standing shard-invariance check.
SCALES: dict[str, StudyConfig] = {
    "smoke": StudyConfig(seed=7, n_sites=60, dns_study_days=0.25),
    "golden": StudyConfig(seed=7, n_sites=120, dns_study_days=0.25),
    "stress": StudyConfig(seed=7, n_sites=1200, dns_study_days=0.25),
    "smoke-sharded": StudyConfig(
        seed=7, n_sites=60, dns_study_days=0.25, shards=4
    ),
    "golden-sharded": StudyConfig(
        seed=7, n_sites=120, dns_study_days=0.25, shards=4
    ),
}


@dataclass
class PipelineRun:
    """One measured end-to-end study run."""

    label: str
    seed: int
    n_sites: int
    wall_s: float
    digest: str
    peak_rss_kb: int
    repeats: int
    timings: StageTimings = field(default_factory=StageTimings)

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "seed": self.seed,
            "n_sites": self.n_sites,
            "wall_s": round(self.wall_s, 4),
            "digest": self.digest,
            "peak_rss_kb": self.peak_rss_kb,
            "repeats": self.repeats,
            "stages": [
                {
                    "name": stage.name,
                    "seconds": round(stage.seconds, 4),
                    "items": stage.items,
                }
                for stage in self.timings.stages
            ],
        }


def _peak_rss_kb() -> int:
    """Process peak RSS in KiB (Linux ru_maxrss unit).

    This is the process-wide high-water mark at the time of the call —
    it never decreases, so callers measuring several scales in one
    process must run them smallest-first (``repro bench`` does).
    """
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def run_pipeline_bench(scale: str = "golden", *, repeats: int = 3) -> PipelineRun:
    """Benchmark the serial study at ``scale``; best wall clock wins.

    Stage timings are kept from the best run; the digest must agree
    across repeats (it is deterministic — a mismatch means a real bug).
    """
    try:
        config = SCALES[scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; pick one of {sorted(SCALES)}"
        ) from None
    best_wall = float("inf")
    best_timings = StageTimings()
    digest: str | None = None
    for _ in range(max(1, repeats)):
        clear_ecosystem_cache()
        timings = StageTimings()
        started = time.perf_counter()
        study = Study.run(config, timings=timings)
        wall = time.perf_counter() - started
        run_digest = study_digest(study)
        if digest is None:
            digest = run_digest
        elif digest != run_digest:
            raise RuntimeError(
                f"non-deterministic study at scale {scale!r}: "
                f"{digest} != {run_digest}"
            )
        if wall < best_wall:
            best_wall = wall
            best_timings = timings
    return PipelineRun(
        label=scale,
        seed=config.seed,
        n_sites=config.n_sites,
        wall_s=best_wall,
        digest=digest or "",
        peak_rss_kb=_peak_rss_kb(),
        repeats=max(1, repeats),
        timings=best_timings,
    )
