"""The performance measurement subsystem.

``repro bench`` profiles the two layers that matter to study
throughput and persists both as schema-versioned JSON at the repo root,
so every PR leaves a comparable performance record:

* :mod:`repro.perfbench.pipeline` — the end-to-end study at the golden
  config (seed=7, n_sites=120) and a stress config (n_sites=1200):
  per-stage wall clock, whole-run peak RSS, and the study digest that
  proves optimizations changed nothing.
* :mod:`repro.perfbench.micro` — microbenchmarks of each hot component
  (HPACK encode/decode, frame codec, hostname verification, the
  resolver TTL cache, pool coalescing, page loads, world generation).
* :mod:`repro.perfbench.report` — the ``BENCH_pipeline.json`` /
  ``BENCH_hotpath.json`` writers, the append-only wall-clock history
  ("trajectory"), and the comparator behind ``repro bench --check``
  that CI uses to fail on regressions.
"""

from repro.perfbench.hostinfo import host_metadata
from repro.perfbench.micro import MicroResult, run_microbenchmarks
from repro.perfbench.pipeline import PipelineRun, run_pipeline_bench
from repro.perfbench.report import (
    BENCH_SCHEMA,
    CheckFailure,
    check_pipeline,
    load_bench,
    write_hotpath_bench,
    write_pipeline_bench,
)

__all__ = [
    "BENCH_SCHEMA",
    "CheckFailure",
    "MicroResult",
    "PipelineRun",
    "check_pipeline",
    "host_metadata",
    "load_bench",
    "run_microbenchmarks",
    "run_pipeline_bench",
    "write_hotpath_bench",
    "write_pipeline_bench",
]
