"""Microbenchmarks for the per-site hot path.

Each benchmark exercises one component with a deterministic workload
(fixed seeds, fixed iteration counts) and reports the best of a few
repeats — the standard defence against scheduler noise.  The workloads
are shaped like the study's real traffic (repetitive header lists,
recurring hostnames, TTL-expiring resolver queries), so caches and
memoization are measured the way production hits them.

    PYTHONPATH=src python -m repro bench --hotpath
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable

__all__ = ["MicroResult", "run_microbenchmarks"]


@dataclass(frozen=True, slots=True)
class MicroResult:
    """One microbenchmark outcome."""

    name: str
    iterations: int
    seconds: float
    note: str = ""

    @property
    def ops_per_s(self) -> float:
        if self.seconds <= 0:
            return float("inf")
        return self.iterations / self.seconds

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "iterations": self.iterations,
            "seconds": round(self.seconds, 6),
            "ops_per_s": round(self.ops_per_s, 1),
            "note": self.note,
        }


def _best_of(fn: Callable[[], int], repeat: int) -> tuple[int, float]:
    """Run ``fn`` ``repeat`` times; return (iterations, best seconds)."""
    best = float("inf")
    iterations = 0
    for _ in range(repeat):
        started = time.perf_counter()
        iterations = fn()
        best = min(best, time.perf_counter() - started)
    return iterations, best


def _header_blocks(count: int, seed: int = 7) -> list[list[tuple[str, str]]]:
    rng = random.Random(seed)
    names = ["accept", "accept-encoding", "cache-control", "cookie",
             "referer", "user-agent", "x-request-id", "authorization"]
    values = ["", "gzip, deflate", "max-age=60", "session=abc123",
              "https://site000001.com/", "Mozilla/5.0", "0123456789" * 4]
    blocks = []
    for _ in range(count):
        block = [
            (":method", "GET"), (":scheme", "https"),
            (":authority", f"site{rng.randint(1, 25):06d}.com"),
            (":path", f"/asset-{rng.randint(1, 40)}"),
        ]
        for _ in range(rng.randint(1, 5)):
            block.append((rng.choice(names), rng.choice(values)))
        blocks.append(block)
    return blocks


def _bench_hpack_encode(repeat: int) -> MicroResult:
    from repro.h2.hpack import HpackEncoder

    blocks = _header_blocks(400)

    def work() -> int:
        encoder = HpackEncoder()
        for block in blocks:
            encoder.encode(block)
        return len(blocks)

    iterations, seconds = _best_of(work, repeat)
    return MicroResult("hpack-encode", iterations, seconds,
                       note="header blocks through one connection encoder")


def _bench_hpack_decode(repeat: int) -> MicroResult:
    from repro.h2.hpack import HpackDecoder, HpackEncoder

    blocks = _header_blocks(400)
    encoder = HpackEncoder()
    encoded = [encoder.encode(block) for block in blocks]

    def work() -> int:
        decoder = HpackDecoder()
        for fragment in encoded:
            decoder.decode(fragment)
        return len(encoded)

    iterations, seconds = _best_of(work, repeat)
    return MicroResult("hpack-decode", iterations, seconds,
                       note="header block fragments through one decoder")


def _bench_frame_codec(repeat: int) -> MicroResult:
    from repro.h2.frames import (
        DataFrame, GoawayFrame, HeadersFrame, OriginFrame, PingFrame,
        SettingsFrame, WindowUpdateFrame, decode_frames, encode_frames,
    )

    rng = random.Random(11)
    frames = []
    for index in range(300):
        stream_id = index * 2 + 1
        frames.append(HeadersFrame(stream_id=stream_id, flags=0x4,
                                   header_block=bytes(rng.randrange(256)
                                                      for _ in range(24))))
        frames.append(DataFrame(stream_id=stream_id, flags=0x1,
                                data=b"x" * rng.randint(16, 512)))
        if index % 7 == 0:
            frames.append(SettingsFrame(pairs=((0x4, 65_535), (0x5, 16_384))))
        if index % 11 == 0:
            frames.append(WindowUpdateFrame(increment=rng.randint(1, 2**16)))
        if index % 13 == 0:
            frames.append(PingFrame(opaque=bytes(range(8))))
        if index % 17 == 0:
            frames.append(OriginFrame(origins=("https://a.com", "https://b.com")))
    frames.append(GoawayFrame(last_stream_id=599, error_code=0))

    def work() -> int:
        wire = encode_frames(frames)
        decoded = decode_frames(wire)
        return len(decoded)

    iterations, seconds = _best_of(work, repeat)
    return MicroResult("frame-codec", iterations, seconds,
                       note="frames encoded to wire bytes and decoded back")


def _bench_hostname_verify(repeat: int) -> MicroResult:
    from repro.tls.certificate import Certificate

    rng = random.Random(13)
    certs = [
        Certificate(
            serial=index,
            subject=f"svc{index:03d}.com",
            sans=(f"svc{index:03d}.com", f"*.svc{index:03d}.com",
                  f"cdn{index % 7}.net"),
            issuer_org="CA",
        )
        for index in range(40)
    ]
    hosts = [f"svc{rng.randrange(50):03d}.com" for _ in range(200)]
    hosts += [f"img.svc{rng.randrange(50):03d}.com" for _ in range(200)]

    def work() -> int:
        matched = 0
        for host in hosts:
            for cert in certs:
                if cert.covers(host):
                    matched += 1
        return len(hosts) * len(certs)

    iterations, seconds = _best_of(work, repeat)
    return MicroResult("hostname-verify", iterations, seconds,
                       note="certificate.covers() calls (memoized hot shape)")


def _bench_resolver_cache(repeat: int) -> MicroResult:
    from repro.dns.loadbalancer import RotationPolicy
    from repro.dns.resolver import RecursiveResolver, ResolverInfo
    from repro.dns.zone import AddressEntry, DnsNamespace

    namespace = DnsNamespace()
    policy = RotationPolicy(answer_count=2, period_s=360.0)
    for index in range(60):
        namespace.add_address(
            f"name{index:03d}.com",
            AddressEntry(
                pool=tuple(f"10.1.{index}.{host}" for host in range(1, 5)),
                ttl=60,
                policy=policy,
            ),
        )
    names = [f"name{index:03d}.com" for index in range(60)]

    def work() -> int:
        resolver = RecursiveResolver(
            namespace=namespace,
            info=ResolverInfo(resolver_id="bench", ip="0.0.0.0",
                              country="n/a", operator="bench"),
            sweep_interval=512,
        )
        queries = 0
        now = 0.0
        while now < 3600.0:  # one simulated hour: TTLs expire 60 times
            for name in names:
                resolver.resolve(name, now=now)
                queries += 1
            now += 12.0
        return queries

    iterations, seconds = _best_of(work, repeat)
    return MicroResult("resolver-ttl-cache", iterations, seconds,
                       note="queries over one simulated hour (60s TTLs)")


def _shared_ecosystem():
    from repro.web.ecosystem import Ecosystem, EcosystemConfig

    return Ecosystem.generate(EcosystemConfig(seed=7, n_sites=40))


def _bench_pool_coalescing(ecosystem, repeat: int) -> MicroResult:
    from repro.browser.pool import ConnectionPool

    domains = [site.domain for site in ecosystem.websites]
    resolver = ecosystem.make_resolver("bench-pool")
    answers = {
        domain: resolver.resolve(domain, now=0.0).ips for domain in domains
    }

    def work() -> int:
        pool = ConnectionPool(
            server_lookup=ecosystem.server_for_ip, rng=random.Random(7)
        )
        lookups = 0
        for round_index in range(6):
            for domain in domains:
                pool.get_connection(
                    domain, answers[domain],
                    privacy_mode=bool(round_index % 2), now=float(round_index),
                )
                lookups += 1
        return lookups

    iterations, seconds = _best_of(work, repeat)
    return MicroResult("pool-coalescing", iterations, seconds,
                       note="get_connection calls incl. coalescing scans")


def _bench_page_load(ecosystem, repeat: int) -> MicroResult:
    from repro.browser.browser import ChromiumBrowser
    from repro.util.clock import SimClock

    domains = [site.domain for site in ecosystem.websites[:15]]

    def work() -> int:
        browser = ChromiumBrowser(
            ecosystem=ecosystem,
            resolver=ecosystem.make_resolver("bench-visit"),
            clock=SimClock(),
            rng=random.Random(7),
        )
        requests = 0
        for domain in domains:
            visit = browser.visit(domain)
            for connection in visit.connections:
                requests += len(connection.requests)
        return requests

    iterations, seconds = _best_of(work, repeat)
    return MicroResult("page-load", iterations, seconds,
                       note="requests across full browser visits")


def _bench_ecosystem_generate(repeat: int) -> MicroResult:
    from repro.web.ecosystem import Ecosystem, EcosystemConfig

    def work() -> int:
        config = EcosystemConfig(seed=7, n_sites=60)
        return len(Ecosystem.generate(config).websites)

    iterations, seconds = _best_of(work, repeat)
    return MicroResult("ecosystem-generate", iterations, seconds,
                       note="sites generated from scratch (no world cache)")


def run_microbenchmarks(*, repeat: int = 3) -> list[MicroResult]:
    """Run every hot-path microbenchmark; deterministic workloads."""
    ecosystem = _shared_ecosystem()
    return [
        _bench_hpack_encode(repeat),
        _bench_hpack_decode(repeat),
        _bench_frame_codec(repeat),
        _bench_hostname_verify(repeat),
        _bench_resolver_cache(repeat),
        _bench_pool_coalescing(ecosystem, repeat),
        _bench_page_load(ecosystem, repeat),
        _bench_ecosystem_generate(repeat),
    ]
