"""BENCH_*.json writers, the persisted trajectory, and the comparator.

Two files live at the repo root and are committed:

* ``BENCH_pipeline.json`` — end-to-end study runs (wall clock, stages,
  peak RSS, digest) plus an append-only ``history`` of one compact
  entry per recording session.  The oldest entry is the pre-optimization
  baseline; speedups are reported against it.
* ``BENCH_hotpath.json`` — the component microbenchmarks.

Both carry ``schema`` (bump on layout changes) and a ``host`` block;
wall-clock comparisons across different hosts are flagged, digest
comparisons are host-independent.

``check_pipeline`` implements ``repro bench --check``: re-measure a
scale and fail when the digest diverges or the wall clock regresses
beyond the tolerance (CI uses 0.25).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path

from repro.perfbench.hostinfo import host_metadata
from repro.perfbench.micro import MicroResult
from repro.perfbench.pipeline import PipelineRun

__all__ = [
    "BENCH_SCHEMA",
    "PIPELINE_BENCH",
    "HOTPATH_BENCH",
    "CheckFailure",
    "CheckOutcome",
    "load_bench",
    "write_pipeline_bench",
    "write_hotpath_bench",
    "write_custom_bench",
    "check_pipeline",
    "render_check_report",
]

BENCH_SCHEMA = 1
PIPELINE_BENCH = "BENCH_pipeline.json"
HOTPATH_BENCH = "BENCH_hotpath.json"


class CheckFailure(RuntimeError):
    """A benchmark check against the committed baseline failed."""


def load_bench(path: str | Path) -> dict:
    """Load one BENCH_*.json, validating the schema version."""
    data = json.loads(Path(path).read_text())
    schema = data.get("schema")
    if schema != BENCH_SCHEMA:
        raise CheckFailure(
            f"{path}: unsupported bench schema {schema!r} "
            f"(this build reads schema {BENCH_SCHEMA})"
        )
    return data


def _dump(path: Path, payload: dict) -> None:
    path.write_text(json.dumps(payload, indent=1, sort_keys=False) + "\n")


def write_pipeline_bench(
    runs: list[PipelineRun],
    path: str | Path,
    *,
    label: str,
    note: str = "",
) -> dict:
    """Write ``BENCH_pipeline.json``, extending the persisted history.

    The existing file's ``history`` is carried over and one compact
    entry per scale in ``runs`` is appended under ``label``.  Speedups
    are computed against the oldest history entry that measured the
    same scale (the pre-optimization baseline).
    """
    path = Path(path)
    history: list[dict] = []
    previous_runs: list[dict] = []
    if path.exists():
        try:
            previous = load_bench(path)
            history = list(previous.get("history", []))
            previous_runs = list(previous.get("runs", []))
        except (json.JSONDecodeError, CheckFailure):
            history = []
    entry: dict = {
        "label": label,
        "recorded_unix": int(time.time()),
        "walls_s": {run.label: round(run.wall_s, 4) for run in runs},
        "digests": {run.label: run.digest for run in runs},
    }
    if note:
        entry["note"] = note
    # One history entry per label: re-running a session's bench updates
    # its record instead of flooding the trajectory.
    history = [past for past in history if past.get("label") != label]
    history.append(entry)

    speedups: dict[str, float] = {}
    for run in runs:
        for past in history:
            past_wall = past.get("walls_s", {}).get(run.label)
            if past_wall:
                speedups[run.label] = round(past_wall / run.wall_s, 3)
                break  # oldest matching entry is the baseline

    # Scales not measured this session keep their previous record, so a
    # partial re-record (e.g. `--scales golden`) never drops the smoke
    # run that CI's --check depends on.
    measured = {run.label for run in runs}
    all_runs = [run.to_dict() for run in runs] + [
        run for run in previous_runs if run.get("label") not in measured
    ]
    all_runs.sort(key=lambda run: run.get("n_sites", 0))

    payload = {
        "schema": BENCH_SCHEMA,
        "kind": "pipeline",
        "host": host_metadata(),
        "runs": all_runs,
        "speedup_vs_oldest": speedups,
        "history": history,
    }
    _dump(path, payload)
    return payload


def write_custom_bench(
    kind: str, fields: dict, path: str | Path, *, label: str
) -> dict:
    """Write an arbitrary benchmark payload under the BENCH schema.

    Used by the ``benchmarks/`` entry points so their results share the
    schema/host envelope of the repo-root BENCH files.
    """
    payload = {
        "schema": BENCH_SCHEMA,
        "kind": kind,
        "label": label,
        "recorded_unix": int(time.time()),
        "host": host_metadata(),
        **fields,
    }
    _dump(Path(path), payload)
    return payload


def write_hotpath_bench(
    results: list[MicroResult], path: str | Path, *, label: str
) -> dict:
    """Write ``BENCH_hotpath.json`` (latest microbenchmark results)."""
    payload = {
        "schema": BENCH_SCHEMA,
        "kind": "hotpath",
        "label": label,
        "recorded_unix": int(time.time()),
        "host": host_metadata(),
        "benchmarks": [result.to_dict() for result in results],
    }
    _dump(Path(path), payload)
    return payload


@dataclass(frozen=True)
class CheckOutcome:
    """One comparison of a fresh run against the committed record."""

    scale: str
    measured_wall_s: float
    recorded_wall_s: float
    tolerance: float
    digest_ok: bool
    same_host: bool

    @property
    def regression(self) -> float:
        """Relative slowdown vs. the record (0.10 == 10% slower)."""
        if self.recorded_wall_s <= 0:
            return 0.0
        return self.measured_wall_s / self.recorded_wall_s - 1.0

    @property
    def wall_ok(self) -> bool:
        return self.regression <= self.tolerance

    @property
    def passed(self) -> bool:
        return self.digest_ok and self.wall_ok


def check_pipeline(
    fresh: PipelineRun,
    committed: dict,
    *,
    tolerance: float = 0.25,
) -> CheckOutcome:
    """Compare a fresh run to the committed ``BENCH_pipeline.json``.

    The digest must match exactly (host-independent determinism); the
    wall clock may regress at most ``tolerance`` relative to the
    recorded run of the same scale.
    """
    recorded = next(
        (run for run in committed.get("runs", [])
         if run.get("label") == fresh.label),
        None,
    )
    if recorded is None:
        raise CheckFailure(
            f"committed benchmark has no run at scale {fresh.label!r}; "
            f"regenerate it with: repro bench"
        )
    recorded_host = committed.get("host", {})
    return CheckOutcome(
        scale=fresh.label,
        measured_wall_s=fresh.wall_s,
        recorded_wall_s=float(recorded.get("wall_s", 0.0)),
        tolerance=tolerance,
        digest_ok=fresh.digest == recorded.get("digest"),
        same_host=recorded_host.get("platform") == host_metadata()["platform"],
    )


def render_check_report(outcome: CheckOutcome) -> str:
    """Human-readable verdict for the CLI."""
    lines = [
        f"bench check @ {outcome.scale}: "
        f"{'PASS' if outcome.passed else 'FAIL'}",
        f"  digest      {'identical' if outcome.digest_ok else 'MISMATCH'}",
        f"  wall clock  {outcome.measured_wall_s:.2f} s vs recorded "
        f"{outcome.recorded_wall_s:.2f} s "
        f"({outcome.regression:+.1%}, tolerance {outcome.tolerance:.0%})",
    ]
    if not outcome.same_host:
        lines.append(
            "  note        recorded on a different host platform; "
            "wall-clock comparison is indicative only"
        )
    return "\n".join(lines)
