"""Host metadata stamped into every BENCH_*.json.

Wall-clock numbers are only comparable on the same class of machine;
the recorded host block lets the comparator warn when a check runs on
different hardware than the committed baseline.
"""

from __future__ import annotations

import os
import platform
import sys

__all__ = ["host_metadata", "available_cpus"]


def available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def host_metadata() -> dict:
    """The reproducible-enough fingerprint of the benchmarking host."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "cpus": available_cpus(),
    }
