"""Certificate authorities.

The paper attributes CERT-cause redundancy to issuers (Tables 3, 5, 9):
Google Trust Services appears for *few* heavy-hitter domains, Let's
Encrypt for a *long tail* of small sites.  The ecosystem generator
recreates that skew by assigning issuers per party; this module provides
the authority objects that mint certificates and the canonical issuer
names used throughout the tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tls.certificate import Certificate

__all__ = [
    "CertificateAuthority",
    "IssuerRegistry",
    "LETS_ENCRYPT",
    "GOOGLE_TRUST_SERVICES",
    "DIGICERT",
    "SECTIGO",
    "CLOUDFLARE_CA",
    "GLOBALSIGN",
    "AMAZON_CA",
    "GODADDY",
    "YANDEX_CA",
    "COMODO",
    "MICROSOFT_CA",
    "WELL_KNOWN_ISSUERS",
]

# Canonical issuer-organisation strings, as printed in the paper's tables.
LETS_ENCRYPT = "Let's Encrypt"
GOOGLE_TRUST_SERVICES = "Google Trust Services"
DIGICERT = "DigiCert Inc"
SECTIGO = "Sectigo Limited"
CLOUDFLARE_CA = "Cloudflare, Inc."
GLOBALSIGN = "GlobalSign nv-sa"
AMAZON_CA = "Amazon"
GODADDY = "GoDaddy.com, Inc."
YANDEX_CA = "Yandex LLC"
COMODO = "COMODO CA Limited"
MICROSOFT_CA = "Microsoft Corporation"

WELL_KNOWN_ISSUERS: tuple[str, ...] = (
    LETS_ENCRYPT,
    GOOGLE_TRUST_SERVICES,
    DIGICERT,
    SECTIGO,
    CLOUDFLARE_CA,
    GLOBALSIGN,
    AMAZON_CA,
    GODADDY,
    YANDEX_CA,
    COMODO,
    MICROSOFT_CA,
)


@dataclass
class CertificateAuthority:
    """Mints certificates under one issuer organisation."""

    org: str
    default_lifetime_s: float = 90 * 24 * 3600.0
    _next_serial: int = 1
    issued: int = 0

    def issue(
        self,
        sans: list[str] | tuple[str, ...],
        *,
        subject: str | None = None,
        not_before: float = 0.0,
        lifetime_s: float | None = None,
    ) -> Certificate:
        """Issue a certificate covering ``sans``.

        The subject defaults to the first SAN, as certbot and most ACME
        clients do.
        """
        sans = tuple(sans)
        if not sans:
            raise ValueError("cannot issue a certificate without SANs")
        serial = self._next_serial
        self._next_serial += 1
        self.issued += 1
        lifetime = self.default_lifetime_s if lifetime_s is None else lifetime_s
        return Certificate(
            serial=serial,
            subject=subject or sans[0].lstrip("*."),
            sans=sans,
            issuer_org=self.org,
            not_before=not_before,
            not_after=not_before + lifetime,
        )


@dataclass
class IssuerRegistry:
    """Lazily created authorities, one per issuer organisation."""

    # thread-safe: authorities are created during single-threaded world
    # generation and epoch evolution only; visit-time fault paths degrade
    # existing certificates (degrade_certificate) without issuing new ones.
    _authorities: dict[str, CertificateAuthority] = field(default_factory=dict)

    def authority(self, org: str) -> CertificateAuthority:
        """The (unique) authority for ``org``; created on first use."""
        if org not in self._authorities:
            self._authorities[org] = CertificateAuthority(org=org)
        return self._authorities[org]

    def issue(
        self, org: str, sans: list[str] | tuple[str, ...], **kwargs
    ) -> Certificate:
        """Convenience: issue via the ``org`` authority."""
        return self.authority(org).issue(sans, **kwargs)

    @property
    def organizations(self) -> list[str]:
        """All issuer orgs that have minted at least one certificate."""
        return sorted(self._authorities)
