"""Hostname verification (RFC 6125 subset).

HTTP/2 Connection Reuse hinges on whether an existing connection's
certificate *covers* the new request's hostname, so this matcher is on
the hot path of both the browser pool and the redundancy classifier.

Implemented rules (the subset browsers actually enforce):

* comparison is case-insensitive on normalised names;
* a wildcard is only honoured as the complete left-most label
  (``*.example.com``; ``f*o.example.com`` is rejected);
* the wildcard matches exactly one label (``*.example.com`` matches
  ``img.example.com`` but neither ``example.com`` nor
  ``a.b.example.com``);
* wildcards never match a public suffix (``*.com`` is rejected).
"""

from __future__ import annotations

from repro.util.domains import is_valid_hostname, labels, normalize, public_suffix

__all__ = ["hostname_matches", "is_valid_san_pattern"]


def is_valid_san_pattern(pattern: str) -> bool:
    """True when ``pattern`` is a plain hostname or a legal wildcard."""
    pattern = normalize(pattern)
    if pattern.startswith("*."):
        remainder = pattern[2:]
        if not is_valid_hostname(remainder):
            return False
        # A wildcard must not cover an entire public suffix.
        return public_suffix(remainder) != remainder or "." in remainder.replace(
            public_suffix(remainder) or "", ""
        ).strip(".")
    return is_valid_hostname(pattern)


def hostname_matches(pattern: str, hostname: str) -> bool:
    """Does SAN ``pattern`` cover ``hostname``?

    >>> hostname_matches("*.example.com", "img.example.com")
    True
    >>> hostname_matches("*.example.com", "example.com")
    False
    >>> hostname_matches("*.example.com", "a.b.example.com")
    False
    """
    pattern = normalize(pattern)
    hostname = normalize(hostname)
    if not is_valid_hostname(hostname):
        return False
    if not pattern.startswith("*."):
        return pattern == hostname
    pattern_rest = labels(pattern[2:])
    host_parts = labels(hostname)
    if len(host_parts) != len(pattern_rest) + 1:
        return False
    if host_parts[1:] != pattern_rest:
        return False
    # The matched parent must not be a bare public suffix.
    parent = ".".join(host_parts[1:])
    return public_suffix(parent) != parent
