"""Hostname verification (RFC 6125 subset).

HTTP/2 Connection Reuse hinges on whether an existing connection's
certificate *covers* the new request's hostname, so this matcher is on
the hot path of both the browser pool and the redundancy classifier.

Implemented rules (the subset browsers actually enforce):

* comparison is case-insensitive on normalised names;
* a wildcard is only honoured as the complete left-most label
  (``*.example.com``; ``f*o.example.com`` is rejected);
* the wildcard matches exactly one label (``*.example.com`` matches
  ``img.example.com`` but neither ``example.com`` nor
  ``a.b.example.com``);
* wildcards never match a public suffix (``*.com`` is rejected).
"""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING

from repro.util.domains import is_valid_hostname, labels, normalize, public_suffix

if TYPE_CHECKING:  # pragma: no cover - avoid the certificate<->verify cycle
    from repro.tls.certificate import Certificate

__all__ = [
    "CertificateError",
    "CertificateExpiredError",
    "CertificateNameError",
    "UntrustedIssuerError",
    "hostname_matches",
    "is_valid_san_pattern",
    "sans_cover",
    "verify_certificate",
]


class CertificateError(RuntimeError):
    """The presented certificate failed handshake verification."""


class CertificateExpiredError(CertificateError):
    """The handshake time falls outside the validity window."""


class CertificateNameError(CertificateError):
    """No SAN covers the requested hostname (RFC 6125 mismatch)."""


class UntrustedIssuerError(CertificateError):
    """The issuing organisation is not in the client's trust store."""


def verify_certificate(
    certificate: "Certificate",
    hostname: str,
    *,
    now: float,
    trusted_issuers: frozenset[str] | None = None,
) -> None:
    """Browser-style leaf verification at handshake time.

    Checks, in the order a client rejects: issuer trust (when a trust
    store is given), the validity window at ``now``, and RFC 6125 name
    coverage.  Raises the matching :class:`CertificateError` subtype;
    returns ``None`` on success.  The errors carry only their message,
    so they survive pickling across process-pool workers intact.
    """
    if (
        trusted_issuers is not None
        and certificate.issuer_org not in trusted_issuers
    ):
        raise UntrustedIssuerError(
            f"issuer {certificate.issuer_org!r} is not trusted"
        )
    if not certificate.is_valid_at(now):
        raise CertificateExpiredError(
            f"certificate for {certificate.subject!r} is outside its "
            f"validity window at t={now:.0f}"
        )
    if not certificate.covers(hostname):
        raise CertificateNameError(
            f"no SAN of {certificate.subject!r} covers {hostname!r}"
        )


def is_valid_san_pattern(pattern: str) -> bool:
    """True when ``pattern`` is a plain hostname or a legal wildcard."""
    pattern = normalize(pattern)
    if pattern.startswith("*."):
        remainder = pattern[2:]
        if not is_valid_hostname(remainder):
            return False
        # A wildcard must not cover an entire public suffix.
        return public_suffix(remainder) != remainder or "." in remainder.replace(
            public_suffix(remainder) or "", ""
        ).strip(".")
    return is_valid_hostname(pattern)


@lru_cache(maxsize=1 << 17)
def hostname_matches(pattern: str, hostname: str) -> bool:
    """Does SAN ``pattern`` cover ``hostname``?

    The match is a pure function of its two strings and sits on the hot
    path of both the session pool's coalescing scan and the redundancy
    classifier, so results are memoized (bounded LRU; per process).

    >>> hostname_matches("*.example.com", "img.example.com")
    True
    >>> hostname_matches("*.example.com", "example.com")
    False
    >>> hostname_matches("*.example.com", "a.b.example.com")
    False
    """
    pattern = normalize(pattern)
    hostname = normalize(hostname)
    if not is_valid_hostname(hostname):
        return False
    if not pattern.startswith("*."):
        return pattern == hostname
    pattern_rest = labels(pattern[2:])
    host_parts = labels(hostname)
    if len(host_parts) != len(pattern_rest) + 1:
        return False
    if host_parts[1:] != pattern_rest:
        return False
    # The matched parent must not be a bare public suffix.
    parent = ".".join(host_parts[1:])
    return public_suffix(parent) != parent


@lru_cache(maxsize=1 << 17)
def sans_cover(sans: tuple[str, ...], hostname: str) -> bool:
    """True when any SAN in ``sans`` matches ``hostname``.

    The SAN tuples of certificates and session records repeat massively
    across a crawl (every connection to the same endpoint carries the
    same tuple), so the whole any() is memoized in one step rather than
    per SAN.
    """
    return any(hostname_matches(san, hostname) for san in sans)
