"""TLS substrate: certificates, SAN verification, issuer registry."""

from repro.tls.certificate import Certificate
from repro.tls.issuers import (
    AMAZON_CA,
    CLOUDFLARE_CA,
    COMODO,
    DIGICERT,
    GLOBALSIGN,
    GODADDY,
    GOOGLE_TRUST_SERVICES,
    LETS_ENCRYPT,
    MICROSOFT_CA,
    SECTIGO,
    WELL_KNOWN_ISSUERS,
    YANDEX_CA,
    CertificateAuthority,
    IssuerRegistry,
)
from repro.tls.verify import hostname_matches, is_valid_san_pattern

__all__ = [
    "Certificate",
    "CertificateAuthority",
    "IssuerRegistry",
    "hostname_matches",
    "is_valid_san_pattern",
    "WELL_KNOWN_ISSUERS",
    "LETS_ENCRYPT",
    "GOOGLE_TRUST_SERVICES",
    "DIGICERT",
    "SECTIGO",
    "CLOUDFLARE_CA",
    "GLOBALSIGN",
    "AMAZON_CA",
    "GODADDY",
    "YANDEX_CA",
    "COMODO",
    "MICROSOFT_CA",
]
