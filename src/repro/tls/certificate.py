"""X.509-shaped certificate model.

Only the fields the reproduction observes are modelled: serial, subject
common name, the Subject Alternative Name list (which RFC 7540 §9.1.1
consults for Connection Reuse), issuer organisation (Tables 3/5/9) and a
validity window.  There is no key material — trust is modelled, not
computed — which keeps millions of simulated handshakes cheap while
preserving every decision the paper's classifier makes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tls.verify import is_valid_san_pattern, sans_cover
from repro.util.domains import normalize

__all__ = ["Certificate"]


@dataclass(frozen=True)
class Certificate:
    """An issued leaf certificate."""

    serial: int
    subject: str
    sans: tuple[str, ...]
    issuer_org: str
    not_before: float = 0.0
    not_after: float = float("inf")

    def __post_init__(self) -> None:
        object.__setattr__(self, "subject", normalize(self.subject))
        sans = tuple(dict.fromkeys(normalize(san) for san in self.sans))
        if not sans:
            raise ValueError("certificate must carry at least one SAN")
        for san in sans:
            if not is_valid_san_pattern(san):
                raise ValueError(f"invalid SAN pattern: {san!r}")
        object.__setattr__(self, "sans", sans)
        if self.not_after <= self.not_before:
            raise ValueError("certificate validity window is empty")

    def covers(self, hostname: str) -> bool:
        """True when any SAN matches ``hostname`` (RFC 6125 rules)."""
        return sans_cover(self.sans, hostname)

    def is_valid_at(self, timestamp: float) -> bool:
        """Validity-window check."""
        return self.not_before <= timestamp < self.not_after

    def covered_hostnames(self, candidates: list[str]) -> list[str]:
        """Filter ``candidates`` down to those this certificate covers."""
        return [name for name in candidates if self.covers(name)]

    @property
    def fingerprint(self) -> str:
        """A stable identifier used for grouping in reports."""
        return f"{self.issuer_org}#{self.serial}"
