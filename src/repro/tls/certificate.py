"""X.509-shaped certificate model.

Only the fields the reproduction observes are modelled: serial, subject
common name, the Subject Alternative Name list (which RFC 7540 §9.1.1
consults for Connection Reuse), issuer organisation (Tables 3/5/9) and a
validity window.  There is no key material — trust is modelled, not
computed — which keeps millions of simulated handshakes cheap while
preserving every decision the paper's classifier makes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.tls.verify import is_valid_san_pattern, sans_cover
from repro.util.domains import normalize

__all__ = ["Certificate", "UNTRUSTED_ISSUER", "degrade_certificate"]

#: Issuer organisation used by fault injection for untrusted chains; it
#: is deliberately absent from :data:`repro.tls.issuers.WELL_KNOWN_ISSUERS`.
UNTRUSTED_ISSUER = "Untrusted Test CA"

#: The degradation modes :func:`degrade_certificate` understands.
DEGRADE_MODES = ("expired", "san-mismatch", "untrusted-issuer")


@dataclass(frozen=True)
class Certificate:
    """An issued leaf certificate."""

    serial: int
    subject: str
    sans: tuple[str, ...]
    issuer_org: str
    not_before: float = 0.0
    not_after: float = float("inf")

    def __post_init__(self) -> None:
        object.__setattr__(self, "subject", normalize(self.subject))
        sans = tuple(dict.fromkeys(normalize(san) for san in self.sans))
        if not sans:
            raise ValueError("certificate must carry at least one SAN")
        for san in sans:
            if not is_valid_san_pattern(san):
                raise ValueError(f"invalid SAN pattern: {san!r}")
        object.__setattr__(self, "sans", sans)
        if self.not_after <= self.not_before:
            raise ValueError("certificate validity window is empty")

    def covers(self, hostname: str) -> bool:
        """True when any SAN matches ``hostname`` (RFC 6125 rules)."""
        return sans_cover(self.sans, hostname)

    def is_valid_at(self, timestamp: float) -> bool:
        """Validity-window check."""
        return self.not_before <= timestamp < self.not_after

    def covered_hostnames(self, candidates: list[str]) -> list[str]:
        """Filter ``candidates`` down to those this certificate covers."""
        return [name for name in candidates if self.covers(name)]

    @property
    def fingerprint(self) -> str:
        """A stable identifier used for grouping in reports."""
        return f"{self.issuer_org}#{self.serial}"


def degrade_certificate(
    certificate: Certificate, mode: str, *, now: float
) -> Certificate:
    """A broken copy of ``certificate`` for fault injection.

    ``mode`` selects the failure a misconfigured server presents:

    * ``"expired"`` — the validity window ended an hour before ``now``;
    * ``"san-mismatch"`` — the SAN list covers only a name nobody asks
      for (a certificate deployed for the wrong vhost);
    * ``"untrusted-issuer"`` — reissued by :data:`UNTRUSTED_ISSUER`.

    The serial is shifted into a reserved range so degraded copies never
    collide with a genuine certificate's fingerprint in reports.
    """
    degraded_serial = certificate.serial + 1_000_000_000
    if mode == "expired":
        return replace(
            certificate,
            serial=degraded_serial,
            not_before=now - 365.0 * 24 * 3600.0,
            not_after=now - 3600.0,
        )
    if mode == "san-mismatch":
        return replace(
            certificate,
            serial=degraded_serial,
            sans=("wrong-vhost.invalid",),
        )
    if mode == "untrusted-issuer":
        return replace(
            certificate, serial=degraded_serial, issuer_org=UNTRUSTED_ISSUER
        )
    raise ValueError(
        f"unknown degradation mode {mode!r}; expected one of {DEGRADE_MODES}"
    )
