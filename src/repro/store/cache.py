"""The content-addressed on-disk study cache.

Every expensive stage of the study pipeline — the HTTP Archive crawl,
the two Alexa crawls, per-dataset classification — is a pure function
of its configuration (the ecosystem config, the stage's seed and knobs,
and the domain list).  The cache exploits that: each stage artefact is
stored under a stable hash of exactly those inputs, so re-running a
study (or a sweep cell) with an unchanged configuration loads the
artefact from disk instead of recomputing it, and *different* cells
that share a stage configuration — e.g. lifetime-model variants over
the same crawl — share one cached entry.

Invalidation is purely by hash: change any contributing knob (or bump
:data:`CACHE_FORMAT` when the artefact layout changes) and the key
changes, leaving the stale entry unreferenced.  ``StudyCache.prune()``
removes entries that are no longer reachable from a set of live keys.

Layout on disk::

    <cache-dir>/
        har-crawl/<key>.pkl      one pickled HarCorpus per crawl config
        alexa-crawl/<key>.pkl    one pickled AlexaRun per run config
        classify/<key>.pkl       one pickled ClassifiedDataset

The payloads are pickles of this package's own dataclasses; the cache
is trusted local state, not an interchange format.  The synthetic
ecosystem itself is *not* stored here — it regenerates deterministically
from its config in well under a second and is shared between studies of
one process via :func:`repro.runtime.ecosystem_for`.

Keys are pure functions of their parts — equal by value, sensitive to
every knob:

>>> from repro.store import stable_key
>>> stable_key("alexa-crawl", 7, ("a.com", "b.com")) == \\
...     stable_key("alexa-crawl", 7, ("a.com", "b.com"))
True
>>> stable_key("alexa-crawl", 7, ("a.com",)) == \\
...     stable_key("alexa-crawl", 8, ("a.com",))
False

And round-trips store whatever pickles:

>>> import tempfile
>>> from repro.store import StudyCache
>>> with tempfile.TemporaryDirectory() as tmp:
...     cache = StudyCache(tmp)
...     _ = cache.put("classify", stable_key("demo"), {"sites": 3})
...     cache.get("classify", stable_key("demo"))
{'sites': 3}
"""

from __future__ import annotations

import hashlib
import os
import pickle
import re
import tempfile
import threading
from dataclasses import dataclass, fields, is_dataclass
from enum import Enum
from pathlib import Path
from typing import Any, Iterator

__all__ = [
    "CACHE_FORMAT",
    "KNOWN_KINDS",
    "CacheStats",
    "StudyCache",
    "stable_key",
]

#: Bump when the pickled artefact layout changes incompatibly; every
#: key embeds it, so old entries simply stop matching.  Format 2:
#: EcosystemConfig grew the evolution axes (evolution_policy, epoch).
#: Format 3: stage artefacts are stored per shard under per-site-set
#: keys (base ecosystem config + evolution token + the shard's domain
#: tuple) instead of one whole-study entry per stage.  Format 4:
#: SiteClassification grew the h3 protocol split (h3_connections and
#: joint h2+h3 record lists under an active h3_profile).
CACHE_FORMAT = 4

#: The artefact kinds the cache stores.  ``_path`` validates against
#: this set so a malformed kind can never address a directory outside
#: the cache layout.
KNOWN_KINDS = frozenset({"har-crawl", "alexa-crawl", "classify"})

#: Keys are :func:`stable_key` digests: 32 lowercase hex characters.
#: Anything else (``..``, ``..\\``, absolute paths) is rejected before
#: it can form a filesystem path.
_KEY_PATTERN = re.compile(r"[0-9a-f]{32}")


def _canonical(value: Any) -> Any:
    """A stable, hashable-by-repr view of a stage-config value.

    Dataclasses flatten to ``(classname, (field, value), ...)``; dicts
    sort their items; sets sort their elements; enums use their value.
    The result's ``repr`` is deterministic across processes (no ids,
    no hash ordering), which is what :func:`stable_key` hashes.
    """
    if is_dataclass(value) and not isinstance(value, type):
        return (
            type(value).__name__,
            tuple(
                (spec.name, _canonical(getattr(value, spec.name)))
                for spec in fields(value)
            ),
        )
    if isinstance(value, dict):
        return tuple(
            (_canonical(key), _canonical(value[key]))
            for key in sorted(value, key=repr)
        )
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted((_canonical(item) for item in value), key=repr))
    if isinstance(value, Enum):
        return (type(value).__name__, value.value)
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return value
    raise TypeError(
        f"cannot build a stable cache key from {type(value).__name__!r}"
    )


def stable_key(*parts: Any) -> str:
    """Hex digest identifying one stage configuration.

    Equal configurations (by value, not identity) produce equal keys in
    every process and on every run; any changed knob changes the key.
    """
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(repr(_canonical((CACHE_FORMAT,) + parts)).encode())
    return hasher.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/write/error counters for one artefact kind.

    ``errors`` counts entries that existed on disk but could not be
    loaded (truncated or corrupt pickles); each such entry is evicted
    and also counted as a miss, so ``lookups`` stays consistent.
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    errors: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses


class StudyCache:
    """Content-addressed pickle store for stage artefacts.

    One instance may serve many studies and sweep cells concurrently
    within a process; writes are atomic (write-to-temp + rename), so a
    crashed run never leaves a truncated artefact behind.  The hit/miss
    counters are lock-guarded, so concurrent server requests sharing
    one cache count every lookup exactly once (the on-disk entries were
    already safe; the *stats* used to race).
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        # thread-safe: every mutation goes through _record() under
        # _stats_lock; readers take snapshots under the same lock.
        self.counters: dict[str, CacheStats] = {}
        self._stats_lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StudyCache({str(self.directory)!r})"

    # ------------------------------------------------------------------
    def _path(self, kind: str, key: str) -> Path:
        if kind not in KNOWN_KINDS:
            raise ValueError(
                f"unknown cache kind {kind!r}; expected one of "
                f"{sorted(KNOWN_KINDS)}"
            )
        if not _KEY_PATTERN.fullmatch(key):
            raise ValueError(
                f"bad cache key {key!r}; expected a 32-character hex "
                f"digest from stable_key()"
            )
        return self.directory / kind / f"{key}.pkl"

    def _record(self, kind: str, *, hits: int = 0, misses: int = 0,
               writes: int = 0, errors: int = 0) -> None:
        """Atomically bump one kind's counters.

        ``setdefault`` plus the bare ``+=`` used to run unlocked; two
        server threads touching the same kind could interleave the
        read-modify-write and lose (or double-count) increments.  All
        counter traffic now serialises on one lock — file I/O stays
        outside it, so the hot path is untouched.
        """
        with self._stats_lock:
            stats = self.counters.setdefault(kind, CacheStats())
            stats.hits += hits
            stats.misses += misses
            stats.writes += writes
            stats.errors += errors

    def total_stats(self) -> CacheStats:
        """Counters summed across kinds (a snapshot, not a live view)."""
        total = CacheStats()
        for stats in self._snapshot().values():
            total.hits += stats.hits
            total.misses += stats.misses
            total.writes += stats.writes
            total.errors += stats.errors
        return total

    def _snapshot(self) -> dict[str, CacheStats]:
        """A consistent copy of the per-kind counters."""
        with self._stats_lock:
            return {
                kind: CacheStats(
                    hits=stats.hits, misses=stats.misses,
                    writes=stats.writes, errors=stats.errors,
                )
                for kind, stats in sorted(self.counters.items())
            }

    def stats_snapshot(self) -> dict[str, dict[str, int]]:
        """Per-kind counters as plain JSON-ready dicts (for ``healthz``)."""
        return {
            kind: {
                "hits": stats.hits,
                "misses": stats.misses,
                "writes": stats.writes,
                "errors": stats.errors,
            }
            for kind, stats in self._snapshot().items()
        }

    def contains(self, kind: str, key: str) -> bool:
        """Whether an artefact exists (does not touch the counters)."""
        return self._path(kind, key).exists()

    def get(self, kind: str, key: str) -> Any | None:
        """The cached artefact, or ``None`` on miss.

        Opens the file directly (no ``exists()`` pre-check) so a
        concurrent ``prune()`` between check and open degrades to a
        plain miss.  An entry that exists but cannot be unpickled —
        truncated by a crashed writer, corrupted on disk — is evicted,
        counted under ``errors``, and reported as a miss; a cached
        stage never kills the study it was meant to speed up.
        """
        path = self._path(kind, key)
        try:
            with path.open("rb") as handle:
                artefact = pickle.load(handle)
        except FileNotFoundError:
            self._record(kind, misses=1)
            return None
        except Exception:
            # Unpickling a damaged file can raise almost anything
            # (UnpicklingError, EOFError, AttributeError, ...); all of
            # them mean the same thing here: the entry is unusable.
            self._record(kind, errors=1, misses=1)
            try:
                path.unlink()
            except FileNotFoundError:  # pragma: no cover - racing prune
                pass
            return None
        self._record(kind, hits=1)
        return artefact

    def put(self, kind: str, key: str, artefact: Any) -> Path:
        """Store ``artefact`` under ``kind``/``key`` atomically."""
        path = self._path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        handle, temp_name = tempfile.mkstemp(
            dir=path.parent, suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "wb") as stream:
                pickle.dump(artefact, stream, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except FileNotFoundError:  # pragma: no cover - already moved
                pass
            raise
        self._record(kind, writes=1)
        return path

    # ------------------------------------------------------------------
    def entries(self) -> Iterator[tuple[str, str]]:
        """All valid ``(kind, key)`` pairs currently on disk.

        Files that do not fit the layout — unknown kind directories,
        names that are not hex digests — are ignored rather than
        yielded, so ``prune`` never tries to address them.
        """
        for kind_dir in sorted(self.directory.iterdir()):
            if not kind_dir.is_dir() or kind_dir.name not in KNOWN_KINDS:
                continue
            for path in sorted(kind_dir.glob("*.pkl")):
                if _KEY_PATTERN.fullmatch(path.stem):
                    yield kind_dir.name, path.stem

    def prune(self, live: set[tuple[str, str]]) -> int:
        """Delete entries not in ``live``; returns the removed count.

        Safe against concurrent prunes of the same directory: an entry
        that vanishes between listing and unlink is simply skipped, and
        only files this call actually removed are counted.
        """
        removed = 0
        for kind, key in list(self.entries()):
            if (kind, key) not in live:
                try:
                    self._path(kind, key).unlink()
                except FileNotFoundError:
                    continue
                removed += 1
        return removed

    def render_stats(self) -> str:
        """An aligned per-kind counter table for ``--profile`` output."""
        from repro.util.formatting import align_table

        rows = [
            [kind, str(stats.hits), str(stats.misses), str(stats.writes),
             str(stats.errors)]
            for kind, stats in self._snapshot().items()
        ]
        if not rows:
            return "Cache: no lookups"
        body = align_table(
            rows, header=["Kind", "Hits", "Misses", "Writes", "Errors"]
        )
        return f"Cache ({self.directory})\n{body}"
