"""Content-addressed persistence for study artefacts."""

from repro.store.cache import (
    CACHE_FORMAT,
    KNOWN_KINDS,
    CacheStats,
    StudyCache,
    stable_key,
)

__all__ = [
    "CACHE_FORMAT",
    "KNOWN_KINDS",
    "CacheStats",
    "StudyCache",
    "stable_key",
]
