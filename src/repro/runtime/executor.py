"""Pluggable executors for per-site fan-out.

The contract of :meth:`Executor.map_sites` is deliberately narrow:

* ``fn`` is a pure function of one item (for :class:`ProcessExecutor`
  it must be picklable, i.e. defined at module level);
* results come back **in input order**, regardless of which worker
  finished first;
* an empty item list yields an empty result list;
* exceptions raised by ``fn`` propagate to the caller.

Those four properties are what let the crawl and classification stages
swap executors without changing a single byte of study output.
"""

from __future__ import annotations

import math
import os
import threading
from abc import ABC, abstractmethod
from concurrent.futures import (
    FIRST_EXCEPTION,
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from typing import Callable, Iterator, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = [
    "Executor",
    "SerialExecutor",
    "TaskTimeoutError",
    "ThreadExecutor",
    "ProcessExecutor",
    "chunk_items",
    "make_executor",
    "shard_items",
]


class TaskTimeoutError(TimeoutError):
    """The pool made no progress for a full watchdog window.

    Raised by pool executors constructed with a ``task_timeout``: when
    an entire window elapses without a single new chunk completing, the
    map is presumed wedged (a hung worker, a deadlocked page load), the
    pool is discarded, and this error surfaces.  It subclasses
    ``TimeoutError`` so the run layer classifies it as transient and
    retries the shard against a fresh pool.
    """


def default_workers() -> int:
    """A sensible worker count for this machine."""
    return max(2, min(8, os.cpu_count() or 2))


def chunk_items(items: Sequence[T], chunk_size: int) -> list[list[T]]:
    """Split ``items`` into ordered chunks of at most ``chunk_size``.

    A ``chunk_size`` larger than the input yields a single chunk; an
    empty input yields no chunks at all.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    return [
        list(items[start:start + chunk_size])
        for start in range(0, len(items), chunk_size)
    ]


def shard_items(
    items: Sequence[T],
    n_shards: int,
    *,
    key: Callable[[T], object] = lambda item: item,
) -> list[list[T]]:
    """Partition ``items`` into ``n_shards`` deterministic buckets.

    An item's bucket is a pure function of ``key(item)`` and
    ``n_shards`` — not of the other items, their order, or the process
    — so shard membership is stable across runs and across studies
    that share sites.  That stability is what lets per-shard cache
    entries survive from one study (or evolution epoch) to the next.
    Within a bucket, items keep their input order; empty buckets are
    returned as empty lists so indices always line up with shard ids.
    """
    from repro.util.rng import stable_hash

    if n_shards <= 0:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    buckets: list[list[T]] = [[] for _ in range(n_shards)]
    for item in items:
        buckets[stable_hash("shard", key(item)) % n_shards].append(item)
    return buckets


def _run_chunk(fn: Callable[[T], R], chunk: list[T]) -> list[R]:
    """Apply ``fn`` to one chunk (executes inside a worker)."""
    return [fn(item) for item in chunk]


class Executor(ABC):
    """Maps a function over independent per-site work items."""

    name: str = "abstract"

    @abstractmethod
    def map_sites(
        self, fn: Callable[[T], R], items: Sequence[T],
        *, chunk_size: int | None = None,
    ) -> list[R]:
        """Apply ``fn`` to every item, returning results in input order."""

    def close(self) -> None:
        """Release worker resources (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class SerialExecutor(Executor):
    """Runs everything inline on the calling thread (the baseline)."""

    name = "serial"

    def map_sites(
        self, fn: Callable[[T], R], items: Sequence[T],
        *, chunk_size: int | None = None,
    ) -> list[R]:
        return [fn(item) for item in items]


class _PoolExecutor(Executor):
    """Shared chunk-submission logic for the pool-backed executors.

    One instance may be shared by concurrent callers (the serve layer
    runs many requests through one executor).  Each ``map_sites``
    *leases* the pool under a lock: the pool plus a generation counter.
    A caller that finds its pool broken (or wedged past the watchdog)
    retires **its own generation only** — if another caller already
    rebuilt, the fresh pool and the futures riding on it are left
    untouched, so a failure in one request can never silently drop a
    concurrent request's work.
    """

    def __init__(self, max_workers: int | None = None,
                 chunk_size: int | None = None,
                 task_timeout: float | None = None) -> None:
        if max_workers is not None and max_workers <= 0:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError(
                f"task_timeout must be positive, got {task_timeout}"
            )
        self.max_workers = max_workers if max_workers is not None \
            else default_workers()
        self.chunk_size = chunk_size
        #: Watchdog window in seconds: a map_sites that completes no new
        #: chunk for one full window raises TaskTimeoutError.  None (the
        #: default) waits forever — the exact pre-watchdog behaviour.
        self.task_timeout = task_timeout
        # thread-safe: _pool/_generation are only read or swapped inside
        # ``with self._pool_lock`` (see _lease/_retire/close); pool
        # shutdown itself happens outside the lock so a slow teardown
        # never blocks concurrent leases.
        self._pool = None
        self._generation = 0
        self._pool_lock = threading.Lock()

    def _make_pool(self):
        raise NotImplementedError

    def _lease(self):
        """Borrow the current pool, creating one if needed.

        Returns ``(pool, generation)``.  The generation ties the lease
        to one concrete pool instance: a caller may only retire the
        generation it leased, never whatever pool happens to be
        installed at failure time.
        """
        with self._pool_lock:
            if self._pool is None:
                self._pool = self._make_pool()
                self._generation += 1
            return self._pool, self._generation

    def _retire(self, generation: int, pool) -> None:
        """Discard a leased pool after a failure, if still installed.

        If another caller already retired this generation (and possibly
        rebuilt), the executor's current pool is left alone; only the
        failed lease's own pool is shut down either way, with pending
        work cancelled.
        """
        with self._pool_lock:
            if self._generation == generation and self._pool is pool:
                self._pool = None
        pool.shutdown(wait=False, cancel_futures=True)

    def _effective_chunk_size(self, n_items: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        # ~4 chunks per worker balances scheduling slack against
        # per-chunk submission overhead.
        return max(1, math.ceil(n_items / (self.max_workers * 4)))

    def map_sites(
        self, fn: Callable[[T], R], items: Sequence[T],
        *, chunk_size: int | None = None,
    ) -> list[R]:
        items = list(items)
        if not items:
            return []
        size = chunk_size if chunk_size is not None else (
            self._effective_chunk_size(len(items))
        )
        chunks = chunk_items(items, size)
        pool, generation = self._lease()
        futures: list = []
        try:
            futures.extend(
                pool.submit(_run_chunk, fn, chunk) for chunk in chunks
            )
            # Block until everything finished OR any chunk raised —
            # not merely until the *input-order-first* chunk resolved,
            # which would let a failure in a late chunk keep the whole
            # queue churning behind a slow early chunk.
            self._wait_for_progress(futures, pool, generation)
            failed = next(
                (
                    future for future in futures
                    if future.done() and not future.cancelled()
                    and future.exception() is not None
                ),
                None,
            )
            if failed is None:
                return [
                    result for future in futures for result in future.result()
                ]
            # A failing chunk dooms the whole map: cancel everything
            # still queued so workers stop burning through chunks whose
            # results can never be used, then surface the original
            # error — fn's own exception, input-order-first among the
            # failures observed when the wait woke up.  (Which failure
            # that is can depend on scheduling when several chunks
            # fail; fail-fast cancellation and a fully deterministic
            # choice are mutually exclusive, and callers abort on any
            # of them.)
            for pending in futures:
                pending.cancel()
            failed.result()  # re-raises fn's exception with its chain
            raise AssertionError("unreachable: failed future had no error")
        except BrokenExecutor:
            # The pool itself died (worker killed, unpicklable error in
            # a spawned process, ...): retire *this lease's* pool so the
            # next map_sites starts from a fresh, working one.  A
            # concurrent caller that already rebuilt keeps its new pool
            # — the old close()-on-failure path would have destroyed it
            # and silently dropped that caller's futures.
            for pending in futures:
                pending.cancel()
            self._retire(generation, pool)
            raise

    def _wait_for_progress(self, futures: list, pool, generation: int) -> None:
        """``wait(FIRST_EXCEPTION)``, optionally under the watchdog.

        With a ``task_timeout``, waits in windows of that many seconds;
        a window in which **no** additional chunk completed (two for a
        map whose very first chunks hang) discards the pool and raises
        :class:`TaskTimeoutError`.  Progress-based rather than
        per-chunk-deadline, so slow-but-moving maps never trip it.
        """
        if self.task_timeout is None:
            wait(futures, return_when=FIRST_EXCEPTION)
            return
        completed = -1
        while True:
            done, not_done = wait(
                futures, timeout=self.task_timeout,
                return_when=FIRST_EXCEPTION,
            )
            if not not_done:
                return
            if any(
                future.done() and not future.cancelled()
                and future.exception() is not None
                for future in done
            ):
                return  # the FIRST_EXCEPTION path: let the caller scan
            if len(done) == completed:
                for pending in futures:
                    pending.cancel()
                self._retire(generation, pool)
                raise TaskTimeoutError(
                    f"no task progress for {self.task_timeout} s "
                    f"({len(not_done)} chunk(s) outstanding)"
                )
            completed = len(done)

    def close(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown()


class ThreadExecutor(_PoolExecutor):
    """Thread-pool execution.

    Python-level work stays GIL-bound, so this mostly helps stages that
    release the GIL; it is also the cheapest way to exercise scheduling
    nondeterminism in the determinism suite.
    """

    name = "thread"

    def _make_pool(self):
        return ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="repro-site"
        )


class ProcessExecutor(_PoolExecutor):
    """Process-pool execution with chunked site batches.

    Workers are forked where the platform allows it, so the parent's
    primed ecosystem cache (see :mod:`repro.runtime.worker`) is
    inherited for free; under spawn/forkserver each worker regenerates
    the world deterministically from its config on first use.
    """

    name = "process"

    def _make_pool(self):
        import multiprocessing

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context()
        return ProcessPoolExecutor(
            max_workers=self.max_workers, mp_context=context
        )


_EXECUTORS: dict[str, type[Executor]] = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def executor_names() -> Iterator[str]:
    """Names accepted by :func:`make_executor` (for CLI help)."""
    return iter(_EXECUTORS)


def make_executor(
    spec: str | Executor | None = "serial",
    workers: int | None = None,
    *, chunk_size: int | None = None, task_timeout: float | None = None,
) -> Executor:
    """Build an executor from a spec string.

    Accepts ``"serial"``, ``"thread"``, ``"process"``, optionally with a
    worker count suffix (``"thread:8"``).  An :class:`Executor` instance
    passes through unchanged; ``None`` means serial.  ``task_timeout``
    arms the pool executors' no-progress watchdog (serial runs ignore
    it: inline work cannot be watched from the thread doing it).
    """
    if spec is None:
        return SerialExecutor()
    if isinstance(spec, Executor):
        return spec
    name, _, suffix = spec.partition(":")
    name = name.strip().lower()
    if name not in _EXECUTORS:
        raise ValueError(
            f"unknown executor {spec!r}; expected one of {sorted(_EXECUTORS)}"
        )
    if suffix:
        try:
            workers = int(suffix)
        except ValueError:
            raise ValueError(f"bad worker count in executor spec {spec!r}")
        if workers <= 0:
            raise ValueError(f"worker count must be positive in {spec!r}")
    elif workers is not None and workers <= 0:
        raise ValueError(f"worker count must be positive, got {workers}")
    cls = _EXECUTORS[name]
    if cls is SerialExecutor:
        return SerialExecutor()
    return cls(max_workers=workers, chunk_size=chunk_size,
               task_timeout=task_timeout)
