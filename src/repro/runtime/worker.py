"""Worker-side ecosystem resolution.

Process-pool tasks cannot cheaply carry the whole synthetic world in
their pickled arguments, and they do not need to: the world is a pure
function of its :class:`~repro.web.ecosystem.EcosystemConfig`.  Tasks
therefore carry only the config; workers resolve it through a
per-process cache.  The driver primes the cache with the already-built
parent ecosystem, so serial and thread executors (and forked process
workers) never regenerate anything, while spawned workers rebuild the
identical world once on first use.

The cache holds at most :data:`MAX_CACHED_WORLDS` worlds (LRU): sweeps
iterate over many ``(seed, n_sites)`` configurations, and without a
bound every world of every cell would stay resident for the life of
the process.  Evicted worlds simply regenerate on next use.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.web.ecosystem import Ecosystem, EcosystemConfig

__all__ = [
    "ecosystem_for",
    "ecosystem_is_cached",
    "prime_ecosystem",
    "clear_ecosystem_cache",
]

#: Retained worlds per process; small, because one study uses one world
#: and only adjacent sweep cells benefit from extras.
MAX_CACHED_WORLDS = 4

# thread-safe: every access goes through _LOCK below.  Thread-executor
# tasks all call ecosystem_for() on the shared per-process cache, and
# even hits mutate it (the LRU move_to_end), so lookups and insertions
# must be atomic; process workers each own a private copy.
_CACHE: "OrderedDict[EcosystemConfig, Ecosystem]" = OrderedDict()
_LOCK = threading.Lock()


def _insert(config: EcosystemConfig, ecosystem: Ecosystem) -> None:
    with _LOCK:
        _CACHE[config] = ecosystem
        _CACHE.move_to_end(config)
        while len(_CACHE) > MAX_CACHED_WORLDS:
            _CACHE.popitem(last=False)


def prime_ecosystem(ecosystem: Ecosystem) -> None:
    """Register an already-built world under its config."""
    _insert(ecosystem.config, ecosystem)


def ecosystem_is_cached(config: EcosystemConfig) -> bool:
    """Whether :func:`ecosystem_for` would hit (no regeneration)."""
    with _LOCK:
        return config in _CACHE


def ecosystem_for(config: EcosystemConfig) -> Ecosystem:
    """The world for ``config``, regenerated deterministically on miss.

    Concurrent misses for the same config may both regenerate; worlds
    are pure functions of their config, so last-insert-wins leaves an
    identical object either way.
    """
    with _LOCK:
        ecosystem = _CACHE.get(config)
    if ecosystem is None:
        ecosystem = Ecosystem.generate(config)
    _insert(config, ecosystem)
    return ecosystem


def clear_ecosystem_cache() -> None:
    """Drop all cached worlds (tests only)."""
    with _LOCK:
        _CACHE.clear()
