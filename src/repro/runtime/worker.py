"""Worker-side ecosystem resolution.

Process-pool tasks cannot cheaply carry the whole synthetic world in
their pickled arguments, and they do not need to: the world is a pure
function of its :class:`~repro.web.ecosystem.EcosystemConfig`.  Tasks
therefore carry only the config; workers resolve it through a
per-process cache.  The driver primes the cache with the already-built
parent ecosystem, so serial and thread executors (and forked process
workers) never regenerate anything, while spawned workers rebuild the
identical world once on first use.
"""

from __future__ import annotations

from repro.web.ecosystem import Ecosystem, EcosystemConfig

__all__ = ["ecosystem_for", "prime_ecosystem", "clear_ecosystem_cache"]

_CACHE: dict[EcosystemConfig, Ecosystem] = {}


def prime_ecosystem(ecosystem: Ecosystem) -> None:
    """Register an already-built world under its config."""
    _CACHE[ecosystem.config] = ecosystem


def ecosystem_for(config: EcosystemConfig) -> Ecosystem:
    """The world for ``config``, regenerated deterministically on miss."""
    ecosystem = _CACHE.get(config)
    if ecosystem is None:
        ecosystem = Ecosystem.generate(config)
        _CACHE[config] = ecosystem
    return ecosystem


def clear_ecosystem_cache() -> None:
    """Drop all cached worlds (tests only)."""
    _CACHE.clear()
