"""The execution substrate: pluggable site-parallel executors.

Every stage of the study pipeline that folds over independent sites —
the HTTP Archive crawl, the two Alexa crawls, dataset classification —
is expressed as one call to :meth:`Executor.map_sites`.  Swapping the
executor (serial, thread pool, process pool) changes only wall-clock
time, never results: per-site work is seeded from ``(seed, site)`` so
the outcome is independent of scheduling order, which the determinism
suite locks in with a study digest.

The contract covers study *output* — datasets, records, renders,
digests.  Host-side diagnostic counters on the shared world (e.g.
``OriginServer.requests_served``) are not part of it: process workers
increment their forked copies and thread workers race on them, so they
are only meaningful after single-threaded use.
"""

from repro.runtime.executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    TaskTimeoutError,
    ThreadExecutor,
    chunk_items,
    make_executor,
    shard_items,
)
from repro.runtime.profile import StageTimings, null_timings
from repro.runtime.worker import (
    clear_ecosystem_cache,
    ecosystem_for,
    ecosystem_is_cached,
    prime_ecosystem,
)

__all__ = [
    "Executor",
    "SerialExecutor",
    "TaskTimeoutError",
    "ThreadExecutor",
    "ProcessExecutor",
    "chunk_items",
    "make_executor",
    "shard_items",
    "StageTimings",
    "null_timings",
    "clear_ecosystem_cache",
    "ecosystem_for",
    "ecosystem_is_cached",
    "prime_ecosystem",
]
