"""Per-stage wall-clock instrumentation for the study pipeline.

Simulated time (:mod:`repro.util.clock`) never touches the wall clock;
this module is the opposite — it measures how long the *host* spends in
each pipeline stage, so ``repro study --profile`` and the runtime
benchmarks can show where executor parallelism pays off.
"""

from __future__ import annotations

import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

__all__ = ["StageTiming", "StageTimings", "null_timings"]


@dataclass
class StageTiming:
    """One completed pipeline stage."""

    name: str
    seconds: float
    items: int | None = None
    #: Peak python heap allocation during the stage (tracemalloc), in
    #: KiB; ``None`` when the run did not track memory.
    peak_kb: int | None = None

    @property
    def items_per_second(self) -> float | None:
        if self.items is None or self.seconds <= 0:
            return None
        return self.items / self.seconds


@dataclass
class StageTimings:
    """Ordered wall-clock record of one pipeline run.

    With ``memory=True`` every stage additionally records its peak
    Python heap allocation via :mod:`tracemalloc`.  Tracing costs real
    time (allocation bookkeeping slows the interpreter noticeably), so
    it is off by default and wall-clock benchmarks must not enable it.
    """

    enabled: bool = True
    memory: bool = False
    stages: list[StageTiming] = field(default_factory=list)
    #: Called as ``observer(name, items)`` when a stage *starts* (before
    #: any work runs), even when timing itself is disabled.  The serve
    #: layer uses this to stream ``stage_start`` events; exceptions it
    #: raises propagate, which is how a draining server aborts a run at
    #: the next stage boundary.
    observer: Callable[[str, int | None], None] | None = field(
        default=None, repr=False, compare=False,
    )
    #: Per-active-stage maximum peaks; makes nested stages correct:
    #: ``reset_peak`` is process-global, so before a child stage resets
    #: it, the parent's window peak is banked here, and the child's
    #: final peak is folded back into the parent on exit.
    _peak_stack: list[int] = field(default_factory=list, repr=False)

    @contextmanager
    def stage(self, name: str, *, items: int | None = None) -> Iterator[None]:
        """Time one stage; a no-op when disabled (observer still fires)."""
        if self.observer is not None:
            self.observer(name, items)
        if not self.enabled:
            yield
            return
        peak_kb: int | None = None
        owns_tracing = False
        if self.memory:
            if tracemalloc.is_tracing():
                if self._peak_stack:
                    self._peak_stack[-1] = max(
                        self._peak_stack[-1],
                        tracemalloc.get_traced_memory()[1],
                    )
            else:
                tracemalloc.start()
                owns_tracing = True
            tracemalloc.reset_peak()
            self._peak_stack.append(0)
        started = time.perf_counter()
        try:
            yield
        finally:
            seconds = time.perf_counter() - started
            if self.memory:
                window_peak = tracemalloc.get_traced_memory()[1]
                peak = max(self._peak_stack.pop(), window_peak)
                peak_kb = peak // 1024
                if self._peak_stack:
                    # Peak during a child is also peak during its parent.
                    self._peak_stack[-1] = max(self._peak_stack[-1], peak)
                if owns_tracing:
                    tracemalloc.stop()
            self.stages.append(
                StageTiming(
                    name=name, seconds=seconds, items=items, peak_kb=peak_kb
                )
            )

    def record(self, name: str, seconds: float, *, items: int | None = None) -> None:
        if self.enabled:
            self.stages.append(StageTiming(name=name, seconds=seconds, items=items))

    @classmethod
    def merged(cls, runs: Iterable["StageTimings"]) -> "StageTimings":
        """Aggregate many runs' timings by stage name.

        Seconds and item counts sum per stage; stages keep the order of
        their first appearance.  This is how sweeps report one combined
        profile over all their cells.
        """
        combined: dict[str, StageTiming] = {}
        for run in runs:
            for stage in run.stages:
                existing = combined.get(stage.name)
                if existing is None:
                    combined[stage.name] = StageTiming(
                        name=stage.name, seconds=stage.seconds,
                        items=stage.items, peak_kb=stage.peak_kb,
                    )
                    continue
                existing.seconds += stage.seconds
                if stage.items is not None:
                    existing.items = (existing.items or 0) + stage.items
                if stage.peak_kb is not None:
                    # Peaks aggregate by maximum, not sum: the merged
                    # view answers "how much memory did this stage ever
                    # need at once".
                    existing.peak_kb = max(existing.peak_kb or 0, stage.peak_kb)
        out = cls(enabled=True)
        out.stages = list(combined.values())
        return out

    @property
    def total_seconds(self) -> float:
        return sum(stage.seconds for stage in self.stages)

    def seconds_for(self, name: str) -> float:
        return sum(stage.seconds for stage in self.stages if stage.name == name)

    def render(self) -> str:
        """An aligned per-stage table for the CLI's ``--profile`` flag."""
        if not self.stages:
            return "Stage timings: (none recorded)"
        width = max(len(stage.name) for stage in self.stages)
        with_memory = any(stage.peak_kb is not None for stage in self.stages)
        lines = ["Stage timings"]
        for stage in self.stages:
            rate = stage.items_per_second
            memory = ""
            if with_memory:
                memory = (
                    f"  {stage.peak_kb:>9,} KiB peak"
                    if stage.peak_kb is not None else f"  {'—':>13}    "
                )
            suffix = ""
            if stage.items is not None:
                suffix = f"  ({stage.items} items"
                if rate is not None:
                    suffix += f", {rate:,.1f}/s"
                suffix += ")"
            lines.append(
                f"  {stage.name:<{width}}  {stage.seconds:>8.3f} s{memory}{suffix}"
            )
        lines.append(f"  {'total':<{width}}  {self.total_seconds:>8.3f} s")
        return "\n".join(lines)


def null_timings() -> StageTimings:
    """A disabled recorder for callers that do not profile."""
    return StageTimings(enabled=False)
