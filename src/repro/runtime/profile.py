"""Per-stage wall-clock instrumentation for the study pipeline.

Simulated time (:mod:`repro.util.clock`) never touches the wall clock;
this module is the opposite — it measures how long the *host* spends in
each pipeline stage, so ``repro study --profile`` and the runtime
benchmarks can show where executor parallelism pays off.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = ["StageTiming", "StageTimings", "null_timings"]


@dataclass
class StageTiming:
    """One completed pipeline stage."""

    name: str
    seconds: float
    items: int | None = None

    @property
    def items_per_second(self) -> float | None:
        if self.items is None or self.seconds <= 0:
            return None
        return self.items / self.seconds


@dataclass
class StageTimings:
    """Ordered wall-clock record of one pipeline run."""

    enabled: bool = True
    stages: list[StageTiming] = field(default_factory=list)

    @contextmanager
    def stage(self, name: str, *, items: int | None = None) -> Iterator[None]:
        """Time one stage; a no-op when disabled."""
        if not self.enabled:
            yield
            return
        started = time.perf_counter()
        try:
            yield
        finally:
            self.stages.append(
                StageTiming(
                    name=name,
                    seconds=time.perf_counter() - started,
                    items=items,
                )
            )

    def record(self, name: str, seconds: float, *, items: int | None = None) -> None:
        if self.enabled:
            self.stages.append(StageTiming(name=name, seconds=seconds, items=items))

    @classmethod
    def merged(cls, runs: Iterable["StageTimings"]) -> "StageTimings":
        """Aggregate many runs' timings by stage name.

        Seconds and item counts sum per stage; stages keep the order of
        their first appearance.  This is how sweeps report one combined
        profile over all their cells.
        """
        combined: dict[str, StageTiming] = {}
        for run in runs:
            for stage in run.stages:
                existing = combined.get(stage.name)
                if existing is None:
                    combined[stage.name] = StageTiming(
                        name=stage.name, seconds=stage.seconds,
                        items=stage.items,
                    )
                    continue
                existing.seconds += stage.seconds
                if stage.items is not None:
                    existing.items = (existing.items or 0) + stage.items
        out = cls(enabled=True)
        out.stages = list(combined.values())
        return out

    @property
    def total_seconds(self) -> float:
        return sum(stage.seconds for stage in self.stages)

    def seconds_for(self, name: str) -> float:
        return sum(stage.seconds for stage in self.stages if stage.name == name)

    def render(self) -> str:
        """An aligned per-stage table for the CLI's ``--profile`` flag."""
        if not self.stages:
            return "Stage timings: (none recorded)"
        width = max(len(stage.name) for stage in self.stages)
        lines = ["Stage timings"]
        for stage in self.stages:
            rate = stage.items_per_second
            suffix = ""
            if stage.items is not None:
                suffix = f"  ({stage.items} items"
                if rate is not None:
                    suffix += f", {rate:,.1f}/s"
                suffix += ")"
            lines.append(
                f"  {stage.name:<{width}}  {stage.seconds:>8.3f} s{suffix}"
            )
        lines.append(f"  {'total':<{width}}  {self.total_seconds:>8.3f} s")
        return "\n".join(lines)


def null_timings() -> StageTimings:
    """A disabled recorder for callers that do not profile."""
    return StageTimings(enabled=False)
