"""Deterministic fault plans.

The happy-path pipeline exercises none of the stack's failure handling:
every DNS answer arrives, every certificate verifies, every HTTP/2
stream completes.  This module is the seeded chaos layer that changes
that — *without* giving up reproducibility.

A :class:`FaultProfile` names a set of :class:`FaultSpec` rates (one per
:class:`FaultKind`); a :class:`FaultPlan` compiles a profile for one
``(seed, run, domain)`` triple, exactly like the per-site crawl tasks
derive their RNG streams.  Every hook point in the stack asks the plan
``fires(kind)`` at the moment the corresponding real-world failure
could occur; the plan draws from a *per-kind* stream, so studies are

* executor-independent — the plan is rebuilt identically inside any
  worker from the task's ``(profile, seed, run, domain)``;
* per-site independent — one site's faults never shift another's;
* per-kind independent — tuning one fault's rate leaves the draw
  sequences of every other kind untouched.

The empty profile (``"none"``) compiles to ``None``: hook points
short-circuit on ``plan is None`` before touching any RNG, so a study
without faults is byte-identical to one built before this module
existed (the pinned golden digest proves it).

>>> from repro.faults import FaultPlan, fault_profile, profile_names
>>> profile_names()
['broken-tls', 'cache-rot', 'chaos', 'flaky-dns', 'h2-churn', 'none', 'slow-origin', 'worker-crash', 'worker-poison']
>>> FaultPlan.compile("none", seed=7, run="alexa-fetch", domain="a.com") is None
True
>>> plan = FaultPlan.compile("chaos", seed=7, run="alexa-fetch", domain="a.com")
>>> again = FaultPlan.compile("chaos", seed=7, run="alexa-fetch", domain="a.com")
>>> kind = next(iter(sorted(fault_profile("chaos").kinds, key=lambda k: k.value)))
>>> [plan.fires(kind) for _ in range(8)] == [again.fires(kind) for _ in range(8)]
True
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from repro.util.rng import stable_hash

__all__ = [
    "FaultKind",
    "FaultSpec",
    "FaultProfile",
    "FaultPlan",
    "PROFILES",
    "fault_profile",
    "profile_names",
]


class FaultKind(enum.Enum):
    """Every failure the stack knows how to inject, by layer."""

    # DNS (repro.dns.resolver / repro.dns.loadbalancer)
    DNS_SERVFAIL = "dns-servfail"
    DNS_NXDOMAIN = "dns-nxdomain"
    DNS_TIMEOUT = "dns-timeout"
    DNS_STALE_TTL = "dns-stale-ttl"
    DNS_NARROWED = "dns-narrowed"
    # TLS (repro.tls.verify / repro.tls.certificate)
    TLS_EXPIRED = "tls-expired"
    TLS_SAN_MISMATCH = "tls-san-mismatch"
    TLS_UNTRUSTED_ISSUER = "tls-untrusted-issuer"
    # HTTP/2 (repro.h2.connection / repro.h2.stream)
    H2_GOAWAY = "h2-goaway"
    H2_RST_STREAM = "h2-rst-stream"
    H2_SETTINGS_CHURN = "h2-settings-churn"
    # Origin server behaviour (repro.web.server, surfaced by the loader)
    SRV_ERROR_BURST = "srv-5xx-burst"
    SRV_LATENCY_SPIKE = "srv-latency-spike"
    SRV_TRUNCATED_BODY = "srv-truncated-body"
    # Task-level infrastructure failures (repro.runlog): these strike
    # the *execution* of a site task or the durability of its cached
    # artefact, never the simulated network, so inside a visit they are
    # invisible — a profile containing only task kinds digests
    # byte-identically to "none" once the run layer recovers them.
    TASK_WORKER_CRASH = "worker-crash"
    TASK_CACHE_ROT = "cache-rot"


#: Kinds that break the TLS handshake; their presence in a profile turns
#: on certificate verification in the session pool.
_TLS_KINDS = frozenset(
    (FaultKind.TLS_EXPIRED, FaultKind.TLS_SAN_MISMATCH,
     FaultKind.TLS_UNTRUSTED_ISSUER)
)


@dataclass(frozen=True)
class FaultSpec:
    """One fault's injection rate plus a kind-specific magnitude.

    ``rate`` is the per-event firing probability; ``param`` means
    different things per kind (latency multiplier, burst length,
    surviving-answer count, truncation factor, new stream limit) and is
    ignored by kinds that need no magnitude.
    """

    kind: FaultKind
    rate: float
    param: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")


@dataclass(frozen=True)
class FaultProfile:
    """A named, immutable set of fault specs (a scenario)."""

    name: str
    description: str
    specs: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        kinds = [spec.kind for spec in self.specs]
        if len(set(kinds)) != len(kinds):
            raise ValueError(f"duplicate fault kinds in profile {self.name!r}")
        # spec_for sits on the per-request hot path (every hook consult
        # goes through it), so index the specs once instead of scanning
        # the tuple per call.
        object.__setattr__(
            self, "_spec_index", {spec.kind: spec for spec in self.specs}
        )

    @property
    def empty(self) -> bool:
        return not self.specs

    @property
    def kinds(self) -> frozenset[FaultKind]:
        return frozenset(spec.kind for spec in self.specs)

    def spec_for(self, kind: FaultKind) -> FaultSpec | None:
        return self._spec_index.get(kind)


def _half(specs: tuple[FaultSpec, ...]) -> tuple[FaultSpec, ...]:
    """The same specs at half rate (for the combined chaos profile)."""
    return tuple(
        FaultSpec(kind=spec.kind, rate=spec.rate / 2.0, param=spec.param)
        for spec in specs
    )


_FLAKY_DNS = (
    FaultSpec(FaultKind.DNS_TIMEOUT, rate=0.06),
    FaultSpec(FaultKind.DNS_SERVFAIL, rate=0.05),
    FaultSpec(FaultKind.DNS_NXDOMAIN, rate=0.02),
    FaultSpec(FaultKind.DNS_STALE_TTL, rate=0.25),
    FaultSpec(FaultKind.DNS_NARROWED, rate=0.15, param=1.0),
)

_BROKEN_TLS = (
    FaultSpec(FaultKind.TLS_EXPIRED, rate=0.05),
    FaultSpec(FaultKind.TLS_SAN_MISMATCH, rate=0.04),
    FaultSpec(FaultKind.TLS_UNTRUSTED_ISSUER, rate=0.03),
)

_H2_CHURN = (
    FaultSpec(FaultKind.H2_GOAWAY, rate=0.04),
    FaultSpec(FaultKind.H2_RST_STREAM, rate=0.05),
    FaultSpec(FaultKind.H2_SETTINGS_CHURN, rate=0.03, param=0.0),
)

_SLOW_ORIGIN = (
    FaultSpec(FaultKind.SRV_LATENCY_SPIKE, rate=0.10, param=25.0),
    FaultSpec(FaultKind.SRV_ERROR_BURST, rate=0.04, param=3.0),
    FaultSpec(FaultKind.SRV_TRUNCATED_BODY, rate=0.05, param=0.25),
)

#: The named scenario registry.  ``"none"`` is the inert default every
#: study runs under unless a fault profile is explicitly requested.
PROFILES: dict[str, FaultProfile] = {
    profile.name: profile
    for profile in (
        FaultProfile("none", "no injected faults (the baseline)"),
        FaultProfile(
            "flaky-dns",
            "SERVFAIL/NXDOMAIN/timeouts, stale-TTL answers, narrowed "
            "load-balancer pools",
            _FLAKY_DNS,
        ),
        FaultProfile(
            "broken-tls",
            "expired leaves, SAN mismatches and untrusted issuers at "
            "handshake time",
            _BROKEN_TLS,
        ),
        FaultProfile(
            "h2-churn",
            "mid-stream GOAWAYs, RST_STREAMs and SETTINGS churn forcing "
            "connection turnover",
            _H2_CHURN,
        ),
        FaultProfile(
            "slow-origin",
            "origin latency spikes, 5xx bursts and truncated bodies",
            _SLOW_ORIGIN,
        ),
        FaultProfile(
            "chaos",
            "every fault axis at half rate (the canonical faulted-golden "
            "scenario)",
            _half(_FLAKY_DNS) + _half(_BROKEN_TLS) + _half(_H2_CHURN)
            + _half(_SLOW_ORIGIN),
        ),
        # The task-level profiles below drive the repro.runlog tests;
        # they are deliberately absent from "chaos" because task faults
        # require the run layer to recover them, while chaos must stay
        # runnable through a bare executor (the faulted golden pins it).
        FaultProfile(
            "worker-crash",
            "a quarter of site tasks crash their worker once, then "
            "succeed on retry (recoverable; digests like 'none')",
            (FaultSpec(FaultKind.TASK_WORKER_CRASH, rate=0.25, param=1.0),),
        ),
        FaultProfile(
            "worker-poison",
            "a small share of site tasks crash their worker on every "
            "attempt, forcing poison quarantine",
            (FaultSpec(FaultKind.TASK_WORKER_CRASH, rate=0.02,
                       param=1_000_000.0),),
        ),
        FaultProfile(
            "cache-rot",
            "most freshly written shard artefacts are truncated on disk "
            "(recoverable: corrupt entries evict and recompute)",
            (FaultSpec(FaultKind.TASK_CACHE_ROT, rate=0.6, param=0.5),),
        ),
    )
}


def profile_names() -> list[str]:
    """Registered profile names, for CLI help and validation messages."""
    return sorted(PROFILES)


def fault_profile(name: str) -> FaultProfile:
    """Look up a registered profile; raises ``ValueError`` on unknowns."""
    profile = PROFILES.get(name)
    if profile is None:
        raise ValueError(
            f"unknown fault profile {name!r}; registered profiles: "
            f"{profile_names()}"
        )
    return profile


@dataclass
class FaultPlan:
    """A profile compiled for one site of one run.

    The plan owns one :class:`random.Random` stream *per fault kind*,
    each seeded from ``(profile, kind, seed, run, domain)``, plus a
    fired-count tally that the crawlers aggregate into the resilience
    taxonomy.  Hook points must only ever consult the plan at moments
    that are themselves deterministic within a site's visit (the whole
    visit is single-threaded), which keeps every draw reproducible.
    """

    profile: FaultProfile
    seed: int
    run: str
    domain: str
    # thread-safe: one FaultPlan per (run, domain) visit, and a visit
    # runs entirely on one executor task (see class docstring).
    _streams: dict[FaultKind, random.Random] = field(
        default_factory=dict, repr=False
    )
    # thread-safe: per-visit, like _streams above.
    _fired: dict[FaultKind, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        for spec in self.profile.specs:
            self._streams[spec.kind] = random.Random(
                stable_hash(
                    "fault", self.profile.name, spec.kind.value,
                    self.seed, self.run, self.domain,
                )
            )

    @classmethod
    def compile(
        cls, profile: FaultProfile | str, *, seed: int, run: str, domain: str
    ) -> "FaultPlan | None":
        """Compile ``profile`` for one site; empty profiles yield ``None``.

        Returning ``None`` (rather than an inert plan object) is what
        makes the fault machinery provably free when unused: callers
        guard every hook on ``plan is not None``, so the no-fault code
        path is literally the pre-fault code path.
        """
        if isinstance(profile, str):
            profile = fault_profile(profile)
        if profile.empty:
            return None
        return cls(profile=profile, seed=seed, run=run, domain=domain)

    # ------------------------------------------------------------------
    @property
    def verifies_tls(self) -> bool:
        """Whether connection setup should verify presented certificates."""
        return bool(self.profile.kinds & _TLS_KINDS)

    def fires(self, kind: FaultKind) -> bool:
        """Draw once: does fault ``kind`` strike at this hook point?"""
        spec = self.profile.spec_for(kind)
        if spec is None or spec.rate <= 0.0:
            return False
        if self._streams[kind].random() >= spec.rate:
            return False
        self._fired[kind] = self._fired.get(kind, 0) + 1
        return True

    def task_crash(self, attempt: int) -> bool:
        """Does the ``worker-crash`` fault strike this task attempt?

        Unlike :meth:`fires`, the verdict is a pure hash of
        ``(seed, run, domain)`` plus an attempt bound — *not* an RNG
        stream draw.  The plan is recompiled fresh inside each retry
        attempt's worker, so a stream draw would fire identically on
        every attempt and no crash could ever be recovered; the hash
        picks the same crashing domains every run, and ``param`` caps
        how many attempts they crash for (a huge ``param`` makes them
        poison).
        """
        spec = self.profile.spec_for(FaultKind.TASK_WORKER_CRASH)
        if spec is None or spec.rate <= 0.0:
            return False
        if attempt >= spec.param:
            return False
        struck = stable_hash(
            "worker-crash", self.seed, self.run, self.domain
        ) % 10_000 < spec.rate * 10_000
        if struck:
            kind = FaultKind.TASK_WORKER_CRASH
            self._fired[kind] = self._fired.get(kind, 0) + 1
        return struck

    def param(self, kind: FaultKind, default: float = 0.0) -> float:
        """The magnitude configured for ``kind`` (profile-level)."""
        spec = self.profile.spec_for(kind)
        return spec.param if spec is not None else default

    def counts(self) -> tuple[tuple[str, int], ...]:
        """Fired counts as a stable, picklable ``(kind, n)`` tuple."""
        return tuple(
            sorted((kind.value, n) for kind, n in self._fired.items())
        )


def merge_counts(
    into: dict[str, int], counts: tuple[tuple[str, int], ...]
) -> None:
    """Fold one site's fired-count tuple into a running taxonomy dict."""
    for kind_value, n in counts:
        into[kind_value] = into.get(kind_value, 0) + n
