"""Seeded, deterministic fault injection for the measurement stack.

See :mod:`repro.faults.plan` for the model.  The layer-specific typed
errors live with their layers (``repro.dns.resolver``,
``repro.tls.verify``, ``repro.h2.stream``) so each layer stays usable
without importing the fault machinery.
"""

from repro.faults.plan import (
    PROFILES,
    FaultKind,
    FaultPlan,
    FaultProfile,
    FaultSpec,
    fault_profile,
    merge_counts,
    profile_names,
)

__all__ = [
    "PROFILES",
    "FaultKind",
    "FaultPlan",
    "FaultProfile",
    "FaultSpec",
    "fault_profile",
    "merge_counts",
    "profile_names",
]
