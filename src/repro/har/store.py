"""HAR corpus persistence.

The HTTP Archive publishes its crawls as files; this module gives the
synthetic corpus the same property, so studies can be crawled once and
re-analysed many times (or shipped to another machine).  One JSON file
per site, plus an index with crawl metadata.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.crawl.httparchive import HarCorpus
from repro.har.model import HarFile

__all__ = ["save_corpus", "load_corpus"]

_INDEX_NAME = "corpus.json"


def _site_filename(index: int, domain: str) -> str:
    safe = domain.replace("/", "_")
    return f"{index:06d}_{safe}.har.json"


def save_corpus(corpus: HarCorpus, directory: str | Path) -> Path:
    """Write ``corpus`` under ``directory`` (created if missing)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    index = {
        "name": corpus.name,
        "unreachable": list(corpus.unreachable),
        "sites": {},
    }
    for position, (domain, har) in enumerate(sorted(corpus.hars.items())):
        filename = _site_filename(position, domain)
        (directory / filename).write_text(
            json.dumps(har.to_dict(), separators=(",", ":"))
        )
        index["sites"][domain] = filename
    (directory / _INDEX_NAME).write_text(json.dumps(index, indent=2))
    return directory / _INDEX_NAME


def load_corpus(directory: str | Path) -> HarCorpus:
    """Read a corpus previously written by :func:`save_corpus`."""
    directory = Path(directory)
    index_path = directory / _INDEX_NAME
    if not index_path.exists():
        raise FileNotFoundError(f"no corpus index at {index_path}")
    index = json.loads(index_path.read_text())
    corpus = HarCorpus(name=index["name"],
                       unreachable=list(index.get("unreachable", ())))
    for domain, filename in index.get("sites", {}).items():
        data = json.loads((directory / filename).read_text())
        corpus.hars[domain] = HarFile.from_dict(data)
    return corpus
