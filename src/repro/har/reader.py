"""HAR sanitisation and session reconstruction (§4.2.1 / §4.3).

Implements the paper's filter cascade verbatim — each dropped request is
tallied under the same category the paper reports — and then groups the
surviving HTTP/2 requests by socket ID to reconstruct
:class:`~repro.core.session.SessionRecord` objects.  HAR files only give
request-level information, so reconstructed sessions have no end time;
the classifier evaluates them under the *endless* and *immediate*
lifetime models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.session import RequestSummary, SessionRecord
from repro.har.model import VALID_METHODS, HarEntry, HarFile

__all__ = ["FilterStats", "HarReadResult", "read_sessions"]


@dataclass
class FilterStats:
    """Counts of requests dropped per §4.3 category."""

    socket_id_zero: int = 0
    missing_ip: int = 0
    inconsistent_ip: int = 0
    invalid_method: int = 0
    invalid_version: int = 0
    invalid_status: int = 0
    http1_or_h3: int = 0
    missing_certificate: int = 0
    bad_pageref: int = 0
    missing_request_id: int = 0
    accepted: int = 0

    @property
    def dropped(self) -> int:
        return (
            self.socket_id_zero
            + self.missing_ip
            + self.inconsistent_ip
            + self.invalid_method
            + self.invalid_version
            + self.invalid_status
            + self.http1_or_h3
            + self.missing_certificate
            + self.bad_pageref
            + self.missing_request_id
        )

    @property
    def total(self) -> int:
        return self.accepted + self.dropped

    def merge(self, other: "FilterStats") -> None:
        for name in vars(other):
            setattr(self, name, getattr(self, name) + getattr(other, name))


@dataclass
class HarReadResult:
    """Sanitised sessions plus the filter tally for one HAR file."""

    site: str
    records: list[SessionRecord] = field(default_factory=list)
    stats: FilterStats = field(default_factory=FilterStats)


def _entry_ok(entry: HarEntry, page_id: str, stats: FilterStats) -> bool:
    """Apply the §4.3 cascade; order mirrors the paper's list."""
    if entry.connection is None or entry.connection == "0":
        stats.socket_id_zero += 1
        return False
    if not entry.server_ip_address:
        stats.missing_ip += 1
        return False
    if entry.method not in VALID_METHODS:
        stats.invalid_method += 1
        return False
    if entry.http_version not in ("HTTP/2", "HTTP/1.1", "h3"):
        stats.invalid_version += 1
        return False
    if not 100 <= entry.status <= 599:
        stats.invalid_status += 1
        return False
    if entry.http_version != "HTTP/2":
        stats.http1_or_h3 += 1
        return False
    if entry.pageref != page_id:
        stats.bad_pageref += 1
        return False
    if entry.request_id is None:
        stats.missing_request_id += 1
        return False
    if entry.security is None or not entry.security.valid:
        stats.missing_certificate += 1
        return False
    return True


def read_sessions(har: HarFile) -> HarReadResult:
    """Sanitize one HAR file and reconstruct its HTTP/2 sessions."""
    stats = FilterStats()
    page_id = har.page.page_id
    by_socket: dict[str, list[HarEntry]] = {}
    socket_ip: dict[str, str] = {}

    for entry in sorted(har.entries, key=lambda e: e.started_date_time):
        if not _entry_ok(entry, page_id, stats):
            continue
        socket = entry.connection
        assert socket is not None and entry.server_ip_address is not None
        known_ip = socket_ip.get(socket)
        if known_ip is None:
            socket_ip[socket] = entry.server_ip_address
        elif known_ip != entry.server_ip_address:
            # The paper found 653 requests with IPs inconsistent with
            # their socket and conservatively excluded them.
            stats.inconsistent_ip += 1
            continue
        stats.accepted += 1
        by_socket.setdefault(socket, []).append(entry)

    records = []
    for socket, entries in by_socket.items():
        first = entries[0]
        assert first.security is not None
        records.append(
            SessionRecord(
                connection_id=int(socket),
                domain=first.domain,
                ip=socket_ip[socket],
                port=443,
                sans=tuple(first.security.san_list),
                issuer=first.security.issuer,
                start=first.started_date_time,
                end=None,  # HARs carry no connection end times (§4.2.1)
                protocol="h2",
                privacy_mode=None,
                requests=tuple(
                    RequestSummary(
                        domain=entry.domain,
                        status=entry.status,
                        finished_at=entry.started_date_time + entry.time_ms / 1000.0,
                        with_credentials=entry.with_credentials,
                        body_size=entry.body_size,
                        path=entry.path,
                        method=entry.method,
                    )
                    for entry in entries
                ),
            )
        )
    records.sort(key=lambda record: record.start)
    return HarReadResult(site=har.page.title, records=records, stats=stats)
