"""HAR generation from browser visits, with realistic logging noise.

The HTTP Archive's HAR files are *lossy*: the paper lists seven classes
of inconsistency it had to filter (§4.3) — requests with socket ID 0
(HTTP/3), missing or inconsistent IPs, invalid methods/versions/
statuses, missing certificates, broken page references.  The writer can
inject each class at configurable rates so the reader's sanitizer is
exercised end to end; the default rates are scaled from the counts the
paper reports (69.12 M of 401.63 M requests affected ≈ 17 %, dominated
by HTTP/1 and HTTP/3 traffic and missing certificates).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.browser.browser import Visit
from repro.har.model import HarEntry, HarFile, HarPage, HarSecurityDetails

__all__ = ["HarNoiseConfig", "write_har"]


@dataclass(frozen=True)
class HarNoiseConfig:
    """Per-request probabilities for each §4.3 inconsistency class."""

    h3_socket_zero: float = 0.02
    missing_ip: float = 0.0006
    inconsistent_ip: float = 0.0003
    invalid_method: float = 0.0005
    invalid_version: float = 0.001
    invalid_status: float = 0.0005
    missing_certificate: float = 0.006
    broken_pageref: float = 0.00001

    @classmethod
    def none(cls) -> "HarNoiseConfig":
        """A writer that logs everything faithfully."""
        return cls(
            h3_socket_zero=0.0,
            missing_ip=0.0,
            inconsistent_ip=0.0,
            invalid_method=0.0,
            invalid_version=0.0,
            invalid_status=0.0,
            missing_certificate=0.0,
            broken_pageref=0.0,
        )


def _http_version(protocol: str) -> str:
    if protocol == "h2":
        return "HTTP/2"
    if protocol == "h3":
        return "h3"
    return "HTTP/1.1"


def write_har(
    visit: Visit,
    *,
    noise: HarNoiseConfig | None = None,
    rng: random.Random | None = None,
) -> HarFile:
    """Serialise one visit the way the HTTP Archive would."""
    if visit.load is None:
        raise ValueError(f"visit to {visit.domain} was unreachable; no HAR")
    noise = noise or HarNoiseConfig.none()
    rng = rng or random.Random(0)
    page = HarPage(
        page_id="page_1",
        started_date_time=visit.started_at,
        title=visit.url,
        on_load_ms=visit.load.load_time * 1000.0,
    )
    har = HarFile(page=page)
    request_counter = 0
    for connection in visit.connections:
        for record in connection.requests:
            request_counter += 1
            socket_id = str(connection.connection_id)
            if connection.protocol == "h3":
                # "these all have socket ID 0, i.e., we cannot
                # distinguish between the connections" (§4.2.1).
                socket_id = "0"
            http_version = _http_version(connection.protocol)
            ip: str | None = connection.remote_ip
            method = record.method
            status = record.status
            pageref = "page_1"
            security: HarSecurityDetails | None = HarSecurityDetails(
                subject_name=connection.certificate.subject,
                san_list=connection.certificate.sans,
                issuer=connection.certificate.issuer_org,
            )
            # ---- §4.3 noise injection --------------------------------
            if rng.random() < noise.h3_socket_zero:
                # HTTP/3 requests all share socket ID 0 in HARs.
                socket_id = "0"
                http_version = "h3"
            if rng.random() < noise.missing_ip:
                ip = None
            elif rng.random() < noise.inconsistent_ip:
                ip = "0.0.0.0"
            if rng.random() < noise.invalid_method:
                method = "INVALID"
            if rng.random() < noise.invalid_version:
                http_version = "unknown"
            if rng.random() < noise.invalid_status:
                status = 0
            if rng.random() < noise.missing_certificate:
                security = None
            if rng.random() < noise.broken_pageref:
                pageref = "page_404"
            har.entries.append(
                HarEntry(
                    pageref=pageref,
                    started_date_time=record.started_at,
                    time_ms=(record.finished_at - record.started_at) * 1000.0,
                    method=method,
                    url=record.url,
                    http_version=http_version,
                    status=status,
                    body_size=record.body_size,
                    server_ip_address=ip,
                    connection=socket_id,
                    request_id=f"req_{request_counter}",
                    with_credentials=record.with_credentials,
                    security=security,
                )
            )
    return har
