"""HAR pipeline: model, writer (with §4.3 noise), sanitising reader."""

from repro.har.model import (
    VALID_METHODS,
    HarEntry,
    HarFile,
    HarPage,
    HarSecurityDetails,
)
from repro.har.reader import FilterStats, HarReadResult, read_sessions
from repro.har.writer import HarNoiseConfig, write_har

__all__ = [
    "VALID_METHODS",
    "HarEntry",
    "HarFile",
    "HarPage",
    "HarSecurityDetails",
    "FilterStats",
    "HarReadResult",
    "read_sessions",
    "HarNoiseConfig",
    "write_har",
]
