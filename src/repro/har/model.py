"""HAR 1.2 object model (the HTTP Archive's data format).

The HTTP Archive stores one HAR file per crawled page; the paper parses
those "to identify HTTP/2 requests on the same sessions (by socket /
connection ID) to reconstruct the HTTP/2 session lifecycle" (§4.2.1).
We model the subset of HAR the analysis touches, including the
HTTP-Archive-specific ``_securityDetails`` block that carries the
certificate SAN list used for Connection Reuse checks.

Timestamps are simulated seconds (floats), not ISO-8601 strings; the
reader treats them opaquely, exactly as the paper's pipeline treats
``startedDateTime``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["HarSecurityDetails", "HarEntry", "HarPage", "HarFile", "VALID_METHODS"]

#: Request methods the sanitizer accepts (everything else is an
#: "invalid HTTP request method" in the paper's filter list).
VALID_METHODS = frozenset(
    {"GET", "POST", "HEAD", "PUT", "DELETE", "OPTIONS", "PATCH"}
)


@dataclass(frozen=True)
class HarSecurityDetails:
    """The certificate details the HTTP Archive exports per request."""

    subject_name: str
    san_list: tuple[str, ...]
    issuer: str
    valid: bool = True


@dataclass(frozen=True)
class HarEntry:
    """One request/response pair."""

    pageref: str
    started_date_time: float
    time_ms: float
    method: str
    url: str
    http_version: str
    status: int
    body_size: int
    server_ip_address: str | None
    connection: str | None  # the socket id, as a string like in HARs
    request_id: str | None = None
    with_credentials: bool = False
    security: HarSecurityDetails | None = None

    @property
    def domain(self) -> str:
        without_scheme = self.url.split("://", 1)[-1]
        return without_scheme.split("/", 1)[0].lower()

    @property
    def path(self) -> str:
        without_scheme = self.url.split("://", 1)[-1]
        slash = without_scheme.find("/")
        return without_scheme[slash:] if slash >= 0 else "/"



@dataclass(frozen=True)
class HarPage:
    """One page load."""

    page_id: str
    started_date_time: float
    title: str
    on_load_ms: float


@dataclass
class HarFile:
    """One HAR document (one page visit in the HTTP Archive)."""

    page: HarPage
    entries: list[HarEntry] = field(default_factory=list)
    creator: str = "repro-harness"
    version: str = "1.2"

    def to_dict(self) -> dict:
        """Serialise to the standard nested-dict HAR layout."""
        return {
            "log": {
                "version": self.version,
                "creator": {"name": self.creator, "version": "1.0"},
                "pages": [
                    {
                        "startedDateTime": self.page.started_date_time,
                        "id": self.page.page_id,
                        "title": self.page.title,
                        "pageTimings": {"onLoad": self.page.on_load_ms},
                    }
                ],
                "entries": [
                    {
                        "pageref": entry.pageref,
                        "startedDateTime": entry.started_date_time,
                        "time": entry.time_ms,
                        "request": {
                            "method": entry.method,
                            "url": entry.url,
                            "httpVersion": entry.http_version,
                        },
                        "response": {
                            "status": entry.status,
                            "httpVersion": entry.http_version,
                            "bodySize": entry.body_size,
                        },
                        "serverIPAddress": entry.server_ip_address,
                        "connection": entry.connection,
                        "_requestId": entry.request_id,
                        "_withCredentials": entry.with_credentials,
                        "_securityDetails": (
                            {
                                "subjectName": entry.security.subject_name,
                                "sanList": list(entry.security.san_list),
                                "issuer": entry.security.issuer,
                                "valid": entry.security.valid,
                            }
                            if entry.security is not None
                            else None
                        ),
                    }
                    for entry in self.entries
                ],
            }
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HarFile":
        """Parse the nested-dict layout back into objects."""
        log = data["log"]
        pages = log.get("pages") or []
        if not pages:
            raise ValueError("HAR file has no pages")
        raw_page = pages[0]
        page = HarPage(
            page_id=raw_page["id"],
            started_date_time=raw_page["startedDateTime"],
            title=raw_page.get("title", ""),
            on_load_ms=raw_page.get("pageTimings", {}).get("onLoad", 0.0),
        )
        entries = []
        for raw in log.get("entries", []):
            raw_security = raw.get("_securityDetails")
            security = None
            if raw_security is not None:
                security = HarSecurityDetails(
                    subject_name=raw_security.get("subjectName", ""),
                    san_list=tuple(raw_security.get("sanList", ())),
                    issuer=raw_security.get("issuer", ""),
                    valid=raw_security.get("valid", True),
                )
            entries.append(
                HarEntry(
                    pageref=raw.get("pageref", ""),
                    started_date_time=raw["startedDateTime"],
                    time_ms=raw.get("time", 0.0),
                    method=raw["request"]["method"],
                    url=raw["request"]["url"],
                    http_version=raw["request"].get("httpVersion", ""),
                    status=raw["response"].get("status", 0),
                    body_size=raw["response"].get("bodySize", 0),
                    server_ip_address=raw.get("serverIPAddress"),
                    connection=raw.get("connection"),
                    request_id=raw.get("_requestId"),
                    with_credentials=raw.get("_withCredentials", False),
                    security=security,
                )
            )
        return cls(page=page, entries=entries)
