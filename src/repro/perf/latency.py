"""Network path model: RTTs and bandwidth for performance estimation.

The paper motivates single-connection HTTP/2 with connection costs:
"with TCP, 1 RTT is spent on connection establishment, increasing to 2
or 3 RTTs when TLS is added.  Additionally, congestion control slow
starts with every new connection" (§2.1).  This model assigns every
server endpoint a deterministic RTT from the client's vantage point so
those costs can be summed over a visit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.rng import stable_hash

__all__ = ["PathModel"]


@dataclass(frozen=True)
class PathModel:
    """Deterministic per-destination latency/bandwidth model."""

    vantage: str = "DE"
    min_rtt_s: float = 0.010
    max_rtt_s: float = 0.120
    #: Access-link bandwidth cap (bits per second).
    bandwidth_bps: float = 50e6
    #: RTT to the recursive resolver (cache misses pay one of these).
    resolver_rtt_s: float = 0.012

    def rtt_for(self, ip: str) -> float:
        """RTT between the vantage point and ``ip`` (stable per pair).

        Addresses in the same /24 share a path, mirroring how the
        paper's nearly-interchangeable load-balanced endpoints sit in
        the same network.
        """
        slash24 = ip.rsplit(".", 1)[0]
        fraction = stable_hash("rtt", self.vantage, slash24) / float(2**64)
        return self.min_rtt_s + fraction * (self.max_rtt_s - self.min_rtt_s)

    def bandwidth_delay_product(self, rtt_s: float) -> float:
        """Bytes in flight at full utilisation of the access link."""
        return self.bandwidth_bps * rtt_s / 8.0
