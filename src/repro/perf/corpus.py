"""Corpus-level performance impact of redundant connections."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crawl.classify import ClassifiedDataset
from repro.perf.latency import PathModel
from repro.perf.whatif import WhatIfResult, whatif_site
from repro.util.stats import median

__all__ = ["CorpusImpact", "corpus_impact"]


@dataclass
class CorpusImpact:
    """Aggregated what-if savings over a classified dataset."""

    dataset: str
    results: list[WhatIfResult] = field(default_factory=list)

    @property
    def total_connections_saved(self) -> int:
        return sum(result.connections_saved for result in self.results)

    @property
    def total_setup_time_saved_s(self) -> float:
        return sum(result.setup_time_saved_s for result in self.results)

    @property
    def total_header_bytes_saved(self) -> int:
        return sum(result.header_bytes_saved for result in self.results)

    def median_relative_saving(self) -> float:
        savings = [result.relative_saving for result in self.results]
        return median(savings) if savings else 0.0

    def mean_setup_saving_per_site_s(self) -> float:
        if not self.results:
            return 0.0
        return self.total_setup_time_saved_s / len(self.results)

    def render(self) -> str:
        lines = [
            f"Performance impact of redundant connections ({self.dataset})",
            f"  sites analysed:                 {len(self.results)}",
            f"  avoidable connections:          {self.total_connections_saved}",
            f"  handshake time avoidable:       "
            f"{self.total_setup_time_saved_s:.2f} s total, "
            f"{self.mean_setup_saving_per_site_s() * 1000:.1f} ms/site",
            f"  HPACK bytes avoidable:          "
            f"{self.total_header_bytes_saved} B",
            f"  median relative cost reduction: "
            f"{self.median_relative_saving():.1%}",
        ]
        return "\n".join(lines)


def corpus_impact(
    dataset: ClassifiedDataset,
    site_records: dict[str, list],
    *,
    path: PathModel | None = None,
) -> CorpusImpact:
    """Run the what-if analysis over every classified site.

    ``site_records`` maps site → its session records (the classifier's
    inputs; the classification objects only retain h2 records, which is
    also what the estimator consumes).
    """
    path = path or PathModel()
    impact = CorpusImpact(dataset=dataset.name)
    for site, classification in dataset.classifications.items():
        records = site_records.get(site)
        if not records:
            records = classification.records
        impact.results.append(
            whatif_site(site, records, classification, path=path)
        )
    return impact
