"""Performance impact models (the paper's stated future work)."""

from repro.perf.congestion import (
    INITIAL_CWND_SEGMENTS,
    MSS_BYTES,
    SlowStartModel,
    TransferOutcome,
)
from repro.perf.corpus import CorpusImpact, corpus_impact
from repro.perf.estimator import PerfEstimate, estimate_records
from repro.perf.latency import PathModel
from repro.perf.whatif import WhatIfResult, coalesce_records, whatif_site

__all__ = [
    "INITIAL_CWND_SEGMENTS",
    "MSS_BYTES",
    "SlowStartModel",
    "TransferOutcome",
    "CorpusImpact",
    "corpus_impact",
    "PerfEstimate",
    "estimate_records",
    "PathModel",
    "WhatIfResult",
    "coalesce_records",
    "whatif_site",
]
