"""What-if analysis: the cost of *not* coalescing.

The paper closes with "for future work, we see it as interesting to
study the exact performance impact of our findings"; this module is
that study for the synthetic corpus.  Given a site's session records
and its §4.1 classification, it constructs the *coalesced counterfactual*:
every redundant connection is merged into the earliest connection that
HTTP/2 Connection Reuse (or, for CRED, the patched Fetch behaviour)
would have allowed, transitively.  Both variants are then costed with
the same latency/slow-start/HPACK models.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.classifier import SiteClassification
from repro.core.session import SessionRecord
from repro.perf.congestion import SlowStartModel
from repro.perf.estimator import PerfEstimate, estimate_records
from repro.perf.latency import PathModel

__all__ = ["WhatIfResult", "coalesce_records", "whatif_site"]


@dataclass(frozen=True)
class WhatIfResult:
    """Measured vs counterfactual cost for one site."""

    site: str
    baseline: PerfEstimate
    coalesced: PerfEstimate

    @property
    def connections_saved(self) -> int:
        return self.baseline.connections - self.coalesced.connections

    @property
    def setup_time_saved_s(self) -> float:
        return self.baseline.setup_time_s - self.coalesced.setup_time_s

    @property
    def header_bytes_saved(self) -> int:
        return self.baseline.header_bytes - self.coalesced.header_bytes

    @property
    def total_time_saved_s(self) -> float:
        return self.baseline.total_time_s - self.coalesced.total_time_s

    @property
    def relative_saving(self) -> float:
        if self.baseline.total_time_s == 0:
            return 0.0
        return self.total_time_saved_s / self.baseline.total_time_s


def _find_root(targets: dict[int, int], connection_id: int) -> int:
    """Union-find style path walk: a merge target may itself be merged."""
    seen = set()
    while connection_id in targets and connection_id not in seen:
        seen.add(connection_id)
        connection_id = targets[connection_id]
    return connection_id


def coalesce_records(
    records: list[SessionRecord], classification: SiteClassification
) -> list[SessionRecord]:
    """Merge every redundant connection into its reusable witness.

    Requests of merged connections move onto the surviving connection,
    preserving their order; the surviving record keeps its own identity
    (IP, certificate, start time).
    """
    targets: dict[int, int] = {}
    for hit in classification.hits:
        # First cause wins; later hits for the same connection agree on
        # redundancy, the exact witness only shifts attribution.
        targets.setdefault(hit.record.connection_id,
                           hit.previous.connection_id)

    by_id = {record.connection_id: record for record in records}
    merged_requests: dict[int, list] = {
        cid: list(record.requests) for cid, record in by_id.items()
    }
    for connection_id in list(targets):
        root = _find_root(targets, connection_id)
        if root == connection_id:
            continue
        merged_requests[root].extend(merged_requests.pop(connection_id, ()))

    survivors = []
    for record in records:
        if record.connection_id not in merged_requests:
            continue
        requests = tuple(
            sorted(merged_requests[record.connection_id],
                   key=lambda request: request.finished_at)
        )
        survivors.append(replace(record, requests=requests))
    return survivors


def whatif_site(
    site: str,
    records: list[SessionRecord],
    classification: SiteClassification,
    *,
    path: PathModel | None = None,
    slow_start: SlowStartModel | None = None,
) -> WhatIfResult:
    """Cost the site as measured vs perfectly coalesced."""
    path = path or PathModel()
    slow_start = slow_start or SlowStartModel()
    baseline = estimate_records(records, path=path, slow_start=slow_start,
                                resolved_domains=set())
    coalesced = estimate_records(
        coalesce_records(records, classification),
        path=path,
        slow_start=slow_start,
        resolved_domains=set(),
    )
    return WhatIfResult(site=site, baseline=baseline, coalesced=coalesced)
