"""TCP slow-start model.

Redundant connections each restart congestion control: the first
~10 packets travel at the initial window, doubling per RTT.  A reused
connection has already grown its window, so the same bytes need fewer
round trips — this module quantifies that difference, which is the
transfer-time side of the paper's §2.2.1 cost argument.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SlowStartModel", "TransferOutcome", "MSS_BYTES", "INITIAL_CWND_SEGMENTS"]

#: Maximum segment size used for window accounting.
MSS_BYTES = 1460

#: RFC 6928 initial congestion window.
INITIAL_CWND_SEGMENTS = 10


@dataclass(frozen=True)
class TransferOutcome:
    """Result of transferring one response body."""

    rounds: int
    time_s: float
    final_cwnd_segments: int


@dataclass(frozen=True)
class SlowStartModel:
    """Idealised slow start: the window doubles each RTT up to a cap."""

    initial_cwnd_segments: int = INITIAL_CWND_SEGMENTS
    mss_bytes: int = MSS_BYTES

    def cwnd_cap_segments(self, rtt_s: float, bandwidth_bps: float) -> int:
        """Window cap from the path's bandwidth-delay product."""
        bdp_bytes = bandwidth_bps * rtt_s / 8.0
        return max(self.initial_cwnd_segments,
                   int(bdp_bytes // self.mss_bytes) or 1)

    def transfer(
        self,
        size_bytes: int,
        *,
        rtt_s: float,
        bandwidth_bps: float = 50e6,
        current_cwnd_segments: int | None = None,
    ) -> TransferOutcome:
        """Rounds/time to deliver ``size_bytes`` starting from a window.

        ``current_cwnd_segments`` carries warm-connection state; pass
        ``None`` for a cold connection.
        """
        if size_bytes < 0:
            raise ValueError(f"negative transfer size: {size_bytes}")
        cap = self.cwnd_cap_segments(rtt_s, bandwidth_bps)
        cwnd = current_cwnd_segments or self.initial_cwnd_segments
        cwnd = min(max(cwnd, 1), cap)
        remaining = size_bytes
        rounds = 0
        while remaining > 0:
            rounds += 1
            remaining -= cwnd * self.mss_bytes
            if remaining > 0:
                cwnd = min(cwnd * 2, cap)
        return TransferOutcome(
            rounds=rounds,
            time_s=rounds * rtt_s,
            final_cwnd_segments=cwnd,
        )
