"""Per-visit performance estimation.

Replays a visit's session records through the latency/slow-start models
and sums three cost components per connection:

* **setup** — DNS (on cache miss) + TCP handshake (1 RTT) + TLS 1.3
  handshake (1 RTT);
* **transfer** — request RTT plus slow-start-limited body delivery,
  with congestion window state carried *within* a connection (reuse
  keeps the window warm);
* **headers** — HPACK bytes, re-encoded with a real RFC 7541 encoder
  per connection, so a fresh connection pays dictionary bootstrap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.session import SessionRecord
from repro.h2.hpack import HpackEncoder
from repro.perf.congestion import SlowStartModel
from repro.perf.latency import PathModel

__all__ = ["PerfEstimate", "estimate_records"]

#: TCP SYN/ACK + TLS 1.3 full handshake, in round trips.
_SETUP_RTTS = 2.0


@dataclass
class PerfEstimate:
    """Aggregate cost of loading one site's sessions."""

    connections: int = 0
    requests: int = 0
    dns_lookups: int = 0
    setup_time_s: float = 0.0
    transfer_time_s: float = 0.0
    header_bytes: int = 0
    header_bytes_uncompressed: int = 0
    per_connection_setup: dict[int, float] = field(default_factory=dict)

    @property
    def total_time_s(self) -> float:
        """Serialised total (an upper-bound, comparison-stable metric)."""
        return self.setup_time_s + self.transfer_time_s

    @property
    def header_compression_ratio(self) -> float:
        if self.header_bytes_uncompressed == 0:
            return 1.0
        return self.header_bytes / self.header_bytes_uncompressed


def _request_headers(record: SessionRecord, request) -> list[tuple[str, str]]:
    headers = [
        (":method", request.method),
        (":scheme", "https"),
        (":authority", request.domain),
        (":path", request.path),
        ("user-agent", "repro-chromium/87.0"),
        ("accept", "*/*"),
        ("accept-encoding", "gzip, deflate, br"),
    ]
    if request.with_credentials:
        headers.append(("cookie", f"sid={record.domain}-0123456789abcdef"))
    return headers


def estimate_records(
    records: list[SessionRecord],
    *,
    path: PathModel | None = None,
    slow_start: SlowStartModel | None = None,
    resolved_domains: set[str] | None = None,
) -> PerfEstimate:
    """Estimate the network cost of a set of session records.

    ``resolved_domains`` carries the DNS cache across connections: the
    first connection to a domain pays a resolver round trip.
    """
    path = path or PathModel()
    slow_start = slow_start or SlowStartModel()
    resolved = set() if resolved_domains is None else resolved_domains
    estimate = PerfEstimate()

    for record in records:
        if record.protocol != "h2":
            continue
        rtt = path.rtt_for(record.ip)
        estimate.connections += 1
        setup = _SETUP_RTTS * rtt
        if record.domain not in resolved:
            resolved.add(record.domain)
            setup += path.resolver_rtt_s
            estimate.dns_lookups += 1
        estimate.setup_time_s += setup
        estimate.per_connection_setup[record.connection_id] = setup

        encoder = HpackEncoder()
        cwnd: int | None = None
        for request in record.requests:
            estimate.requests += 1
            encoder.encode(_request_headers(record, request))
            outcome = slow_start.transfer(
                request.body_size,
                rtt_s=rtt,
                bandwidth_bps=path.bandwidth_bps,
                current_cwnd_segments=cwnd,
            )
            cwnd = outcome.final_cwnd_segments
            # One RTT for request/first-byte + the delivery rounds.
            estimate.transfer_time_s += rtt + outcome.time_s
        estimate.header_bytes += encoder.bytes_emitted
        estimate.header_bytes_uncompressed += encoder.bytes_uncompressed

    return estimate
