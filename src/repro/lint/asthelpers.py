"""Small AST utilities shared by the lint rules."""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = ["dotted_name", "inside_lock", "walk_with_parents"]


def walk_with_parents(
    tree: ast.AST,
) -> Iterator[tuple[ast.AST, tuple[ast.AST, ...]]]:
    """Depth-first walk yielding ``(node, ancestors)`` pairs.

    ``ancestors`` is ordered outermost-first and excludes ``node``
    itself, so rules can ask "am I inside a ``with`` / function / class"
    without mutating nodes.
    """
    stack: list[tuple[ast.AST, tuple[ast.AST, ...]]] = [(tree, ())]
    while stack:
        node, parents = stack.pop()
        yield node, parents
        child_parents = parents + (node,)
        for child in ast.iter_child_nodes(node):
            stack.append((child, child_parents))


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def inside_lock(parents: tuple[ast.AST, ...]) -> bool:
    """Is the node under a ``with`` whose context looks like a lock?

    The heuristic is lexical: any enclosing ``with`` item whose
    expression's dotted name contains ``lock`` (``_LOCK``,
    ``self._lock``, ``cache.lock()``) counts.  Precise enough for a
    codebase that names its locks as locks, which the shared-state rule
    requires anyway.
    """
    for parent in parents:
        if not isinstance(parent, ast.With):
            continue
        for item in parent.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call):
                expr = expr.func
            name = dotted_name(expr)
            if name is not None and "lock" in name.lower():
                return True
    return False
