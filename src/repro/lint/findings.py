"""Lint findings: what every rule reports and how it is keyed.

A finding is one violation at one source location.  Its *baseline key*
deliberately excludes the line number: baselined findings survive
unrelated edits that shift lines, and go stale exactly when the
offending code (or the rule's message for it) changes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is repo-relative POSIX so findings render identically (and
    baseline keys match) regardless of the machine the linter ran on.
    """

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line} {self.rule} {self.message}"

    def baseline_key(self) -> str:
        """Line-number-free identity used by the baseline file."""
        return f"{self.path}\t{self.rule}\t{self.message}"
