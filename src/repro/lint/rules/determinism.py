"""Rule ``determinism``: no ambient entropy in result-bearing code.

Digests, folds and cache keys must be pure functions of
``(config, seed)``.  Anything that reads ambient process state — the
module-level ``random`` RNG, wall clocks, ``os.urandom``/``uuid4``,
environment variables — or iterates a ``set`` in hash order can differ
between two runs that should be byte-identical, and the golden harness
only catches it *after* the nondeterminism ships.

Sanctioned alternatives, per forbidden form:

* ``random.random()`` etc.  → a seeded per-kind stream:
  ``repro.util.rng.RngFactory(...).stream(kind)`` or
  ``random.Random(seed)``.
* ``time.time()`` / ``datetime.now()`` → the simulated clock
  (``repro.util.clock.SimClock``) or an explicit ``now`` parameter.
* ``os.urandom`` / ``uuid.uuid4`` → ``repro.util.rng.stable_hash``.
* ``os.environ`` / ``os.getenv`` → explicit config/CLI parameters.
* iterating a set / ``.keys()`` → ``sorted(...)`` first.

Wall-clock *measurement* code (``repro/perfbench``, the stage timer)
is excluded by path: timing how long work took is its job.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.lint.asthelpers import dotted_name, walk_with_parents
from repro.lint.engine import Project
from repro.lint.findings import Finding

__all__ = ["DeterminismRule"]

#: ``random.<fn>`` module-level calls that draw from the shared RNG.
_RANDOM_CALLS = frozenset((
    "random.random", "random.randint", "random.randrange", "random.choice",
    "random.choices", "random.sample", "random.shuffle", "random.uniform",
    "random.gauss", "random.betavariate", "random.expovariate",
    "random.getrandbits", "random.seed",
))

#: Wall-clock and ambient-entropy reads, with the sanctioned fix.
_FORBIDDEN_CALLS: dict[str, str] = {
    "time.time": "use the SimClock or pass `now` explicitly",
    "time.time_ns": "use the SimClock or pass `now` explicitly",
    "datetime.now": "use the SimClock or pass `now` explicitly",
    "datetime.utcnow": "use the SimClock or pass `now` explicitly",
    "datetime.today": "use the SimClock or pass `now` explicitly",
    "datetime.datetime.now": "use the SimClock or pass `now` explicitly",
    "datetime.datetime.utcnow": "use the SimClock or pass `now` explicitly",
    "datetime.date.today": "use the SimClock or pass `now` explicitly",
    "os.urandom": "derive bytes from util.rng.stable_hash",
    "uuid.uuid4": "derive ids from util.rng.stable_hash",
    "uuid.uuid1": "derive ids from util.rng.stable_hash",
    "uuid4": "derive ids from util.rng.stable_hash",
    "uuid1": "derive ids from util.rng.stable_hash",
    "os.getenv": "thread configuration through StudyConfig/CLI flags",
}


def _is_set_expression(node: ast.AST) -> bool:
    """Does ``node`` evaluate to a set (statically recognisable forms)?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr == "keys":
            return True  # .keys(): order mirrors a possibly-shared dict
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # set algebra: s | t, s & t, s - t, s ^ t
        return _is_set_expression(node.left) or _is_set_expression(node.right)
    return False


@dataclass
class DeterminismRule:
    """Forbid ambient entropy on result-bearing code paths."""

    rule_id: str = "determinism"
    #: Path prefixes whose job is wall-clock measurement.
    exclude_prefixes: tuple[str, ...] = (
        "src/repro/perfbench/",
        "src/repro/runtime/profile.py",
    )

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            if module.rel.startswith(self.exclude_prefixes):
                continue
            yield from self._check_module(module)

    def _check_module(self, module) -> Iterator[Finding]:
        for node, parents in walk_with_parents(module.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in _RANDOM_CALLS:
                    yield Finding(
                        path=module.rel, line=node.lineno, rule=self.rule_id,
                        message=(
                            f"call to the shared module-level RNG "
                            f"({name}); use a seeded per-kind stream "
                            f"(util.rng.RngFactory / random.Random(seed))"
                        ),
                    )
                elif name in _FORBIDDEN_CALLS:
                    yield Finding(
                        path=module.rel, line=node.lineno, rule=self.rule_id,
                        message=(
                            f"nondeterministic call {name}(); "
                            f"{_FORBIDDEN_CALLS[name]}"
                        ),
                    )
            elif isinstance(node, ast.Attribute):
                if (
                    node.attr == "environ"
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "os"
                ):
                    yield Finding(
                        path=module.rel, line=node.lineno, rule=self.rule_id,
                        message=(
                            "os.environ read; thread configuration through "
                            "StudyConfig/CLI flags"
                        ),
                    )
            elif isinstance(node, ast.For):
                if _is_set_expression(node.iter):
                    yield Finding(
                        path=module.rel, line=node.lineno, rule=self.rule_id,
                        message=(
                            "iteration over a set/.keys() view in hash "
                            "order; wrap the iterable in sorted(...)"
                        ),
                    )
            elif isinstance(node, ast.comprehension):
                if _is_set_expression(node.iter):
                    yield Finding(
                        path=module.rel, line=node.iter.lineno,
                        rule=self.rule_id,
                        message=(
                            "comprehension over a set/.keys() view in hash "
                            "order; wrap the iterable in sorted(...)"
                        ),
                    )
