"""Rule ``shared-state``: no unguarded cross-task memo containers.

The thread executor runs per-site tasks against *shared* objects — the
ecosystem, its origin servers, the per-process world cache — so any
mutable container those tasks write concurrently is a data race unless
it is guarded.  The rule flags two statically recognisable shapes:

1. **module-level mutable containers** (dict/list/set/OrderedDict/...)
   that some function in the same module mutates — the classic
   module-global memo cache;
2. **private instance memo dicts** — a ``_``-prefixed dataclass field
   (or ``self._x = {}`` in ``__init__``/``__post_init__``) of dict
   shape that a method writes via ``self._x[key] = ...`` /
   ``.setdefault`` — the per-object memo-dict idiom PR 3 introduced.

Sanctioned alternatives, in preference order: ``functools.lru_cache``
on a pure function (thread-safe, bounded); a ``threading.Lock`` around
every access (the rule recognises mutations inside ``with <lock>:``);
or, when the container is provably not shared across tasks — built
once on the main thread, or owned by a per-task object — a
``# thread-safe: <why>`` comment on the definition explaining exactly
that.  Public (non-underscore) dataclass fields are out of scope: they
are the data being computed, not caches bolted onto it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.lint.asthelpers import dotted_name, inside_lock, walk_with_parents
from repro.lint.engine import Project
from repro.lint.findings import Finding
from repro.lint.source import SourceModule

__all__ = ["SharedStateRule"]

_CONTAINER_CALLS = frozenset((
    "dict", "list", "set", "collections.OrderedDict", "OrderedDict",
    "collections.defaultdict", "defaultdict", "collections.deque", "deque",
))
_DICT_FACTORIES = frozenset((
    "dict", "OrderedDict", "collections.OrderedDict", "defaultdict",
    "collections.defaultdict",
))
_MUTATORS = frozenset((
    "append", "add", "update", "setdefault", "pop", "popitem", "clear",
    "extend", "insert", "move_to_end", "remove", "discard", "appendleft",
))


def _is_mutable_container(node: ast.AST) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                         ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name in _CONTAINER_CALLS
    return False


def _is_dict_field(node: ast.AST) -> bool:
    """``field(default_factory=dict)`` / ``{}`` / ``dict()`` shapes."""
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in _DICT_FACTORIES:
            return True
        if name in ("field", "dataclasses.field"):
            for keyword in node.keywords:
                if keyword.arg == "default_factory":
                    factory = dotted_name(keyword.value)
                    if factory in _DICT_FACTORIES:
                        return True
    return False


@dataclass
class SharedStateRule:
    """Flag unguarded shared mutable containers."""

    rule_id: str = "shared-state"

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project.modules:
            yield from self._module_globals(module)
            for node in module.tree.body:
                if isinstance(node, ast.ClassDef):
                    yield from self._instance_memos(module, node)

    # -- shape 1: module-level containers ------------------------------
    def _module_globals(self, module: SourceModule) -> Iterator[Finding]:
        containers: dict[str, int] = {}
        for statement in module.tree.body:
            target = value = None
            if isinstance(statement, ast.Assign) and len(statement.targets) == 1:
                target, value = statement.targets[0], statement.value
            elif isinstance(statement, ast.AnnAssign) and statement.value:
                target, value = statement.target, statement.value
            if (
                isinstance(target, ast.Name)
                and value is not None
                and _is_mutable_container(value)
            ):
                containers[target.id] = statement.lineno
        if not containers:
            return
        mutated = self._mutated_globals(module.tree, set(containers))
        for name in sorted(mutated):
            line = containers[name]
            if module.has_thread_safe_comment(line):
                continue
            yield Finding(
                path=module.rel, line=line, rule=self.rule_id,
                message=(
                    f"module-level mutable container '{name}' is written "
                    f"from function code without a lock; guard every "
                    f"access with a threading.Lock, use functools."
                    f"lru_cache, or justify with a '# thread-safe:' "
                    f"comment"
                ),
            )

    def _mutated_globals(
        self, tree: ast.Module, names: set[str]
    ) -> set[str]:
        """Container names mutated inside a function without a lock."""
        mutated: set[str] = set()
        for node, parents in walk_with_parents(tree):
            if not any(
                isinstance(p, (ast.FunctionDef, ast.AsyncFunctionDef))
                for p in parents
            ):
                continue
            name = self._mutation_target(node)
            if name in names and not inside_lock(parents):
                mutated.add(name)
        return mutated

    @staticmethod
    def _mutation_target(node: ast.AST) -> str | None:
        """The bare name a statement mutates, if any."""
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target] if isinstance(node, ast.AugAssign)
                else node.targets
            )
            for target in targets:
                if isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    return target.value.id
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if node.func.attr in _MUTATORS and isinstance(
                node.func.value, ast.Name
            ):
                return node.func.value.id
        return None

    # -- shape 2: private instance memo dicts --------------------------
    def _instance_memos(
        self, module: SourceModule, class_def: ast.ClassDef
    ) -> Iterator[Finding]:
        memo_fields: dict[str, int] = {}
        for statement in class_def.body:
            if (
                isinstance(statement, ast.AnnAssign)
                and isinstance(statement.target, ast.Name)
                and statement.target.id.startswith("_")
                and statement.value is not None
                and _is_dict_field(statement.value)
            ):
                memo_fields[statement.target.id] = statement.lineno
            elif isinstance(statement, ast.FunctionDef) and statement.name in (
                "__init__", "__post_init__"
            ):
                for node in ast.walk(statement):
                    if (
                        isinstance(node, ast.Assign)
                        and len(node.targets) == 1
                        and isinstance(node.targets[0], ast.Attribute)
                        and isinstance(node.targets[0].value, ast.Name)
                        and node.targets[0].value.id == "self"
                        and node.targets[0].attr.startswith("_")
                        and _is_dict_field(node.value)
                    ):
                        memo_fields.setdefault(
                            node.targets[0].attr, node.lineno
                        )
        if not memo_fields:
            return
        written = self._self_dict_writes(class_def, set(memo_fields))
        for name in sorted(written):
            line = memo_fields[name]
            if module.has_thread_safe_comment(line):
                continue
            yield Finding(
                path=module.rel, line=line, rule=self.rule_id,
                message=(
                    f"instance memo dict '{name}' is written by methods "
                    f"without a lock; replace it with functools.lru_cache "
                    f"on a pure function, guard it, or justify with a "
                    f"'# thread-safe:' comment on the definition"
                ),
            )

    @staticmethod
    def _self_dict_writes(
        class_def: ast.ClassDef, names: set[str]
    ) -> set[str]:
        written: set[str] = set()
        for node, parents in walk_with_parents(class_def):
            attribute = None
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Attribute
                    ):
                        attribute = target.value
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in ("setdefault", "update") and isinstance(
                    node.func.value, ast.Attribute
                ):
                    attribute = node.func.value
            if (
                attribute is not None
                and isinstance(attribute.value, ast.Name)
                and attribute.value.id == "self"
                and attribute.attr in names
                and not inside_lock(parents)
            ):
                written.add(attribute.attr)
        return written
