"""Rule ``cache-key``: every ``StudyConfig`` axis must invalidate caches.

The study cache is content-addressed: a stage artefact is reused
whenever its key matches, so a config field that can change a stage's
output but is hashed by no key silently serves stale artefacts.  Three
``CACHE_FORMAT`` bumps in this repo's history were exactly this bug.

The rule parses the config dataclass and verifies each field is
*consumed* by the key-derivation layer, in one of two statically
recognisable ways:

1. its name is read as an attribute inside a **key function** — any
   function that calls ``stable_key`` or is named in
   ``key_function_names`` (``shard_key``, ``cache_world_key``, ...);
2. its name is read (as ``self.<field>``) inside a **router method** of
   the config class — ``ecosystem_config()`` by default — whose product
   is hashed whole: ``cache_world_key`` embeds the entire pristine
   ``EcosystemConfig`` in every stage key, so a field routed into it is
   covered.  Router coverage only counts while some key function
   actually reads ``config`` (the world identity); if that read
   disappears the routed fields all become findings.

Everything else must be listed in the rule's exemption table with a
justification (the table is part of the checked-in rule configuration;
a stale entry — naming a field that no longer exists — is itself a
finding, so the table cannot rot).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

from repro.lint.engine import Project
from repro.lint.findings import Finding

__all__ = ["CacheKeyRule", "STUDY_CONFIG_EXEMPTIONS"]

#: StudyConfig fields legitimately absent from every stage key, and why.
#: Keep justifications load-bearing: they are rendered in ``repro lint
#: --explain`` output (the docs quote them verbatim).
STUDY_CONFIG_EXEMPTIONS: dict[str, str] = {
    "executor": (
        "execution substrate only; digests are executor-independent by "
        "construction (pinned by the serial/thread/process golden suite)"
    ),
    "parallelism": (
        "worker count for the executor; affects wall clock only, like "
        "`executor`"
    ),
    "shards": (
        "partitioning knob: each shard key hashes its member domains and "
        "schedule slots, and the N-shard fold is shard-count-invariant "
        "(pinned by goldens for N in {1,2,3,7})"
    ),
    "alexa_share": (
        "consumed via the Alexa domain list: it selects the top-N "
        "domains, and every shard key hashes the shard's domains"
    ),
    "ha_sample_share": (
        "consumed via the HTTP Archive sample: it draws the crawl's "
        "domain list, and every shard key hashes the shard's domains"
    ),
    "dns_study_days": (
        "the Appendix A.4 DNS study is computed on demand and never "
        "stored in the StudyCache"
    ),
    "har_models": (
        "selects which per-dataset classification keys exist; each "
        "classify key hashes its own (model, dataset-name) pair"
    ),
    "alexa_variants": (
        "selects which crawl runs exist; each run's shard keys hash the "
        "run name and browser-patch knobs"
    ),
}


@dataclass
class CacheKeyRule:
    """Statically verify cache-key completeness of the config dataclass."""

    rule_id: str = "cache-key"
    #: Repo-relative path of the module defining the config dataclass.
    config_rel: str = "src/repro/analysis/study.py"
    config_class: str = "StudyConfig"
    #: Functions treated as key derivations even without a direct
    #: ``stable_key`` call in their body.
    key_function_names: tuple[str, ...] = (
        "stage_key",
        "shard_key",
        "cache_world_key",
        "classify_cache_key",
        "evolution_token",
    )
    #: The key-hashing primitive; any function calling it is a key
    #: function too.
    key_primitive: str = "stable_key"
    #: Methods of the config class whose attribute reads count as
    #: consumption because their product is hashed whole (see module
    #: docstring).
    router_methods: tuple[str, ...] = ("ecosystem_config",)
    #: The attribute a key function must read for router coverage to
    #: apply (the world-identity object cache_world_key hashes).
    router_witness: str = "config"
    exemptions: dict[str, str] = field(
        default_factory=lambda: dict(STUDY_CONFIG_EXEMPTIONS)
    )

    # ------------------------------------------------------------------
    def check(self, project: Project) -> Iterable[Finding]:
        module = project.module(self.config_rel)
        if module is None:
            # Linting a subtree that excludes the config module: the
            # completeness check is inapplicable, not violated.  Rot
            # (the module being renamed away) is caught by the full-tree
            # CI run's fixture tests, which copy the file by path.
            return
        config_def = self._class_def(module.tree)
        if config_def is None:
            yield Finding(
                path=self.config_rel, line=1, rule=self.rule_id,
                message=f"class {self.config_class} not found",
            )
            return

        fields = self._fields(config_def)
        key_reads = self._key_function_reads(project)
        router_reads = (
            self._router_reads(config_def)
            if self.router_witness in key_reads
            else frozenset()
        )

        for name, line in fields:
            if name in key_reads or name in router_reads:
                continue
            if name in self.exemptions:
                continue
            yield Finding(
                path=self.config_rel, line=line, rule=self.rule_id,
                message=(
                    f"{self.config_class}.{name} is hashed by no "
                    f"stage-key/stable_key/cache_world_key derivation and "
                    f"carries no exemption — a sweep over it would reuse "
                    f"stale cache artefacts"
                ),
            )
        field_names = {name for name, _ in fields}
        for name in sorted(self.exemptions):
            if name not in field_names:
                yield Finding(
                    path=self.config_rel, line=config_def.lineno,
                    rule=self.rule_id,
                    message=(
                        f"stale cache-key exemption: {self.config_class}."
                        f"{name} no longer exists; delete the table entry"
                    ),
                )

    # ------------------------------------------------------------------
    def _class_def(self, tree: ast.Module) -> ast.ClassDef | None:
        for node in tree.body:
            if isinstance(node, ast.ClassDef) and node.name == self.config_class:
                return node
        return None

    @staticmethod
    def _fields(config_def: ast.ClassDef) -> list[tuple[str, int]]:
        """(name, line) of every dataclass field of the config class."""
        fields = []
        for statement in config_def.body:
            if isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ):
                fields.append((statement.target.id, statement.lineno))
        return fields

    def _key_function_reads(self, project: Project) -> frozenset[str]:
        """Attribute names consumed by key derivations, project-wide.

        A function *named* as a key function contributes every read in
        its body (the whole function is the derivation).  Any other
        function contributes only the reads inside its ``stable_key``
        call arguments: a long crawl method that hashes a provenance
        key incidentally must not launder its unrelated reads into
        "consumed by the key layer".
        """
        reads: set[str] = set()
        for module in project.modules:
            for node in ast.walk(module.tree):
                if not isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if node.name in self.key_function_names:
                    scopes: list[ast.AST] = [node]
                else:
                    scopes = list(self._primitive_calls(node))
                for scope in scopes:
                    for inner in ast.walk(scope):
                        if isinstance(inner, ast.Attribute):
                            reads.add(inner.attr)
                        elif isinstance(inner, ast.keyword) and inner.arg:
                            reads.add(inner.arg)
        return frozenset(reads)

    def _primitive_calls(self, function: ast.AST) -> Iterable[ast.Call]:
        for node in ast.walk(function):
            if isinstance(node, ast.Call):
                func = node.func
                name = (
                    func.id if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute)
                    else None
                )
                if name == self.key_primitive:
                    yield node

    def _router_reads(self, config_def: ast.ClassDef) -> frozenset[str]:
        """``self.<attr>`` reads inside the config class's router methods."""
        reads: set[str] = set()
        for statement in config_def.body:
            if not isinstance(statement, ast.FunctionDef):
                continue
            if statement.name not in self.router_methods:
                continue
            for node in ast.walk(statement):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                ):
                    reads.add(node.attr)
        return frozenset(reads)
