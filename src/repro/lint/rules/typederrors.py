"""Rule ``typed-errors``: subsystem exceptions stay in their hierarchy.

The fault engine, the browser's retry paths and the resilience report
all dispatch on exception *types*: a ``DnsError`` means "re-ask the
resolver", a ``CertificateError`` means "handshake failed, count it",
an ``H2Error`` means "stream/connection trouble, maybe retry".  A raise
site that throws a bare ``RuntimeError`` from inside ``repro/dns``
escapes every one of those dispatchers and surfaces as an unexplained
study crash — or worse, is swallowed by a broad handler that cannot
record what it caught.

Two checks:

1. **raise sites** under the configured subsystem trees must raise a
   class deriving (transitively, within the subsystem) from the
   subsystem's root, or one of the allowed builtin contract errors
   (``ValueError``/``TypeError``/... for caller bugs, which are not
   network outcomes);
2. **broad handlers** (``except Exception``) anywhere in the linted
   tree must either re-raise or visibly record the error (an
   assignment/augassign to an ``errors``/``failures``-like counter
   attribute, or a call to a ``record*`` function) — silently eating an
   exception in stage code turns a real bug into a wrong number.  A
   *bare* ``except:`` is banned outright: it additionally swallows
   ``KeyboardInterrupt``/``SystemExit``, which breaks the run layer's
   graceful-SIGINT contract, and no re-raise discipline redeems that.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.lint.engine import Project
from repro.lint.findings import Finding

__all__ = ["TypedErrorsRule"]

#: Builtin exceptions allowed anywhere: argument/contract errors, not
#: simulated network outcomes.
_ALLOWED_BUILTINS = frozenset((
    "ValueError", "TypeError", "KeyError", "IndexError", "LookupError",
    "NotImplementedError", "AssertionError", "StopIteration",
    "FileNotFoundError", "OSError", "SystemExit",
))

#: Attribute-name fragments that count as "recording" the error.
_RECORD_FRAGMENTS = ("error", "failure", "miss", "fault")


@dataclass
class TypedErrorsRule:
    """Enforce per-subsystem error hierarchies and honest broad catches."""

    rule_id: str = "typed-errors"
    #: path prefix -> root class name of that subsystem's hierarchy.
    hierarchies: dict[str, str] = field(default_factory=lambda: {
        "src/repro/dns/": "DnsError",
        "src/repro/tls/": "CertificateError",
        "src/repro/h2/": "H2Error",
        "src/repro/runlog/": "RunJournalError",
    })

    def check(self, project: Project) -> Iterable[Finding]:
        class_bases = self._subsystem_classes(project)
        for module in project.modules:
            root = self._root_for(module.rel)
            if root is not None:
                yield from self._check_raises(module, root, class_bases)
            yield from self._check_broad_handlers(module)

    # ------------------------------------------------------------------
    def _root_for(self, rel: str) -> str | None:
        for prefix, root in self.hierarchies.items():
            if rel.startswith(prefix):
                return root
        return None

    def _subsystem_classes(self, project: Project) -> dict[str, list[str]]:
        """name -> base names, across every configured subsystem tree.

        Collected subsystem-wide (not per-module) so a class raised in
        one module but defined in a sibling — ``NxDomain`` raised by
        the resolver, defined in ``zone.py`` — still resolves.
        """
        bases: dict[str, list[str]] = {}
        for module in project.modules:
            if self._root_for(module.rel) is None:
                continue
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    names = []
                    for base in node.bases:
                        if isinstance(base, ast.Name):
                            names.append(base.id)
                        elif isinstance(base, ast.Attribute):
                            names.append(base.attr)
                    bases[node.name] = names
        return bases

    def _derives(
        self, name: str, root: str, class_bases: dict[str, list[str]]
    ) -> bool:
        seen: set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            if current == root:
                return True
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(class_bases.get(current, ()))
        return False

    def _check_raises(
        self,
        module,
        root: str,
        class_bases: dict[str, list[str]],
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            if isinstance(exc, ast.Attribute):
                name = exc.attr
            elif isinstance(exc, ast.Name):
                name = exc.id
            else:
                continue  # re-raise of a bound variable; out of scope
            if name in _ALLOWED_BUILTINS or name == root:
                continue
            if self._derives(name, root, class_bases):
                continue
            yield Finding(
                path=module.rel, line=node.lineno, rule=self.rule_id,
                message=(
                    f"raise of {name} inside a {root} subsystem; derive "
                    f"it from {root} (or use a builtin contract error "
                    f"like ValueError for caller bugs)"
                ),
            )

    # ------------------------------------------------------------------
    def _check_broad_handlers(self, module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                # Bare except: unconditionally banned — it swallows
                # KeyboardInterrupt/SystemExit, so even a handler that
                # re-raises or records cannot honour Ctrl-C.
                yield Finding(
                    path=module.rel, line=node.lineno, rule=self.rule_id,
                    message=(
                        "bare 'except:' swallows KeyboardInterrupt/"
                        "SystemExit; catch 'Exception' (and re-raise "
                        "or record) instead"
                    ),
                )
                continue
            name = (
                node.type.id if isinstance(node.type, ast.Name) else None
            )
            if name not in ("Exception", "BaseException"):
                continue
            if self._reraises_or_records(node):
                continue
            yield Finding(
                path=module.rel, line=node.lineno, rule=self.rule_id,
                message=(
                    "broad exception handler neither re-raises nor "
                    "records; narrow the catch, re-raise, or count it "
                    "into an errors/failures counter"
                ),
            )

    @staticmethod
    def _reraises_or_records(handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            target = None
            if isinstance(node, ast.AugAssign):
                target = node.target
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
            if isinstance(target, ast.Attribute) and any(
                fragment in target.attr.lower()
                for fragment in _RECORD_FRAGMENTS
            ):
                return True
            if isinstance(node, ast.Call):
                func = node.func
                name = (
                    func.attr if isinstance(func, ast.Attribute)
                    else func.id if isinstance(func, ast.Name)
                    else ""
                )
                if "record" in name.lower():
                    return True
        return False
