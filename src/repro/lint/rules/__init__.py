"""The rule families of ``repro lint``.

``default_rules()`` is the repo-tuned set the CLI runs; tests build
their own rule instances with fixture-specific configuration.
"""

from __future__ import annotations

from repro.lint.rules.cachekey import STUDY_CONFIG_EXEMPTIONS, CacheKeyRule
from repro.lint.rules.determinism import DeterminismRule
from repro.lint.rules.sharedstate import SharedStateRule
from repro.lint.rules.typederrors import TypedErrorsRule

__all__ = [
    "CacheKeyRule",
    "DeterminismRule",
    "SharedStateRule",
    "STUDY_CONFIG_EXEMPTIONS",
    "TypedErrorsRule",
    "default_rules",
]


def default_rules() -> tuple:
    """The four rule families, configured for this repository."""
    return (
        DeterminismRule(),
        CacheKeyRule(),
        SharedStateRule(),
        TypedErrorsRule(),
    )
