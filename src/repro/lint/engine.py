"""The lint driver: discover sources, run rules, apply the baseline.

The baseline file is an escape hatch for *pre-existing* findings only:
``repro lint`` exits nonzero on any finding that is not baselined, and
``--check`` (the CI mode) additionally fails when a baseline entry no
longer fires — so the baseline can only ever shrink.  New code must
ship clean or carry an inline ``# repro-lint: ignore[rule]`` exemption
at the offending line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Protocol, Sequence

from repro.lint.findings import Finding
from repro.lint.source import SourceModule

__all__ = [
    "LintReport",
    "LintRule",
    "Project",
    "load_baseline",
    "run_lint",
    "write_baseline",
]


class LintRule(Protocol):
    """One rule family: inspects the whole project, yields findings."""

    rule_id: str

    def check(self, project: "Project") -> Iterable[Finding]:
        ...


@dataclass
class Project:
    """Every parsed module the linter looks at, keyed by relative path."""

    root: Path
    modules: list[SourceModule] = field(default_factory=list)

    @classmethod
    def load(cls, root: Path, paths: Sequence[str | Path]) -> "Project":
        root = root.resolve()
        files: list[Path] = []
        for raw in paths:
            target = (root / raw).resolve()
            if target.is_dir():
                files.extend(sorted(target.rglob("*.py")))
            elif target.suffix == ".py":
                files.append(target)
            else:
                raise FileNotFoundError(f"nothing to lint at {raw!r}")
        seen: set[Path] = set()
        modules = []
        for path in files:
            if path in seen:
                continue
            seen.add(path)
            modules.append(SourceModule.load(path, root))
        return cls(root=root, modules=modules)

    def module(self, rel: str) -> SourceModule | None:
        for candidate in self.modules:
            if candidate.rel == rel:
                return candidate
        return None


@dataclass
class LintReport:
    """The outcome of one lint run against a baseline."""

    findings: list[Finding]
    #: Findings not covered by the baseline — these fail the run.
    new: list[Finding]
    #: Baseline entries that no longer fire — these fail ``--check``.
    stale: list[str]

    def ok(self, *, check: bool = False) -> bool:
        return not self.new and not (check and self.stale)


def run_lint(
    project: Project,
    rules: Sequence[LintRule],
    *,
    baseline: frozenset[str] = frozenset(),
) -> LintReport:
    """Run every rule, drop inline-ignored findings, split by baseline."""
    findings: list[Finding] = []
    by_rel = {module.rel: module for module in project.modules}
    for rule in rules:
        for finding in rule.check(project):
            module = by_rel.get(finding.path)
            if module is not None and module.is_ignored(
                finding.line, finding.rule
            ):
                continue
            findings.append(finding)
    findings.sort()
    used: set[str] = set()
    new: list[Finding] = []
    for finding in findings:
        key = finding.baseline_key()
        if key in baseline:
            used.add(key)
        else:
            new.append(finding)
    stale = sorted(baseline - used)
    return LintReport(findings=findings, new=new, stale=stale)


def load_baseline(path: Path) -> frozenset[str]:
    """Baseline keys from ``path`` (missing file = empty baseline)."""
    if not path.exists():
        return frozenset()
    keys = []
    for line in path.read_text().splitlines():
        if not line.strip() or line.lstrip().startswith("#"):
            continue
        keys.append(line)
    return frozenset(keys)


def write_baseline(path: Path, findings: Iterable[Finding]) -> None:
    keys = sorted({finding.baseline_key() for finding in findings})
    header = (
        "# repro lint baseline — pre-existing findings only.\n"
        "# This file may only shrink: `repro lint --check` fails when an\n"
        "# entry stops firing (delete it) or a new finding is unbaselined\n"
        "# (fix it, or exempt it inline with `# repro-lint: ignore[rule]`).\n"
        "# Format: <path>\\t<rule>\\t<message>, one finding per line.\n"
    )
    path.write_text(header + "".join(key + "\n" for key in keys))
