"""``repro lint`` — the determinism & concurrency contract checker.

A small stdlib-``ast`` static-analysis framework enforcing the
invariants docs/ARCHITECTURE.md promises but goldens can only catch
after the fact:

* ``determinism`` — no ambient entropy (module-level ``random``, wall
  clocks, ``os.environ``, set-order iteration) in result-bearing code;
* ``cache-key`` — every ``StudyConfig`` field is hashed by a stage-key
  derivation or carries an explicit, justified exemption;
* ``shared-state`` — no unguarded mutable containers shared across
  executor tasks;
* ``typed-errors`` — dns/tls/h2 raise inside their typed hierarchies,
  and broad handlers re-raise or record.

Run it::

    python -m repro lint              # report; exit 1 on new findings
    python -m repro lint --check      # CI mode: baseline may only shrink
    python -m repro lint --write-baseline

Per-line exemptions: ``# repro-lint: ignore[rule-id]``.  Shared-state
justifications: ``# thread-safe: <why>`` on the definition.
"""

from __future__ import annotations

from repro.lint.engine import (
    LintReport,
    Project,
    load_baseline,
    run_lint,
    write_baseline,
)
from repro.lint.findings import Finding
from repro.lint.rules import default_rules

__all__ = [
    "Finding",
    "LintReport",
    "Project",
    "default_rules",
    "load_baseline",
    "run_lint",
    "write_baseline",
]
