"""Parsed source modules and the exemption-comment grammar.

Two comment forms matter to the linter:

* ``# repro-lint: ignore[rule-id]`` (comma-separated ids, or ``*``)
  placed on the finding's line suppresses matching findings on that
  line.  An exemption is part of the code it excuses: it travels with
  the line through refactors, unlike a baseline entry.
* ``# thread-safe: <why>`` on (or in the comment block directly above)
  a shared-container definition is the shared-state rule's sanctioned
  justification — it must say *why* the container needs no lock.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["SourceModule"]

_IGNORE = re.compile(r"#\s*repro-lint:\s*ignore\[([^\]]*)\]")
_THREAD_SAFE = re.compile(r"#\s*thread-safe:\s*\S")
_COMMENT_OR_BLANK = re.compile(r"^\s*(#.*)?$")


@dataclass
class SourceModule:
    """One parsed Python file plus its lint-relevant comment facts."""

    path: Path
    #: Repo-relative POSIX path ("src/repro/dns/resolver.py").
    rel: str
    text: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    #: line number -> rule ids suppressed there ("*" element = all).
    ignores: dict[int, frozenset[str]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path, root: Path) -> "SourceModule":
        text = path.read_text()
        tree = ast.parse(text, filename=str(path))
        lines = text.splitlines()
        ignores: dict[int, frozenset[str]] = {}
        for number, line in enumerate(lines, start=1):
            match = _IGNORE.search(line)
            if match:
                rules = frozenset(
                    part.strip() for part in match.group(1).split(",")
                    if part.strip()
                )
                ignores[number] = rules or frozenset(("*",))
        return cls(
            path=path,
            rel=path.resolve().relative_to(root.resolve()).as_posix(),
            text=text,
            tree=tree,
            lines=lines,
            ignores=ignores,
        )

    def is_ignored(self, line: int, rule: str) -> bool:
        rules = self.ignores.get(line)
        return rules is not None and (rule in rules or "*" in rules)

    def has_thread_safe_comment(self, line: int) -> bool:
        """A ``# thread-safe:`` justification on ``line`` or in the
        contiguous comment block directly above it."""
        index = line - 1  # 0-based
        if index < 0 or index >= len(self.lines):
            return False
        if _THREAD_SAFE.search(self.lines[index]):
            return True
        above = index - 1
        while above >= 0 and _COMMENT_OR_BLANK.match(self.lines[above]):
            if _THREAD_SAFE.search(self.lines[above]):
                return True
            above -= 1
        return False
