"""Connection-reuse audit of a single website.

This is the "coalescing audit tool" use of the library: visit one page
with the Chromium model, list every HTTP/2 connection it opened, and for
each redundant one explain *why* HTTP/2 Connection Reuse did not kick in
(the paper's CERT / IP / CRED causes), including the reusable previous
connection that was available.

Run:  python examples/audit_single_site.py [site-domain]
"""

from __future__ import annotations

import random
import sys

from repro import (
    BrowserConfig,
    ChromiumBrowser,
    Ecosystem,
    EcosystemConfig,
    LifetimeModel,
    classify_site,
    records_from_visit,
)
from repro.core.reuse import reuse_blockers
from repro.util.clock import SimClock


def pick_site(ecosystem: Ecosystem) -> str:
    """Prefer a site with analytics + ads: the paper's worst case."""
    for site in ecosystem.websites:
        embeds = set(site.embedded_services)
        if {"google-analytics", "google-ads"} <= embeds:
            return site.domain
    return ecosystem.websites[0].domain


def main() -> None:
    ecosystem = Ecosystem.generate(EcosystemConfig(seed=7, n_sites=150))
    domain = sys.argv[1] if len(sys.argv) > 1 else pick_site(ecosystem)

    browser = ChromiumBrowser(
        ecosystem=ecosystem,
        resolver=ecosystem.make_resolver(),
        clock=SimClock(),
        rng=random.Random(1),
        config=BrowserConfig(vantage_country="DE"),
    )
    print(f"Visiting https://{domain}/ ...")
    visit = browser.visit(domain)
    if visit.unreachable:
        print("Site unreachable in this synthetic world."); return

    records = records_from_visit(visit)
    verdict = classify_site(domain, records, model=LifetimeModel.ACTUAL)

    print(f"\n{len(verdict.records)} HTTP/2 connections, "
          f"{verdict.redundant_count} redundant:\n")
    hits_by_conn: dict[int, list] = {}
    for hit in verdict.hits:
        hits_by_conn.setdefault(hit.record.connection_id, []).append(hit)

    for record in verdict.records:
        flag = "REDUNDANT" if record.connection_id in hits_by_conn else "ok"
        print(f"  #{record.connection_id:<3} {record.domain:<42} "
              f"{record.ip:<12} [{record.issuer}] {flag}")
        for hit in hits_by_conn.get(record.connection_id, []):
            prev = hit.previous
            print(f"        cause {hit.cause.value}: connection "
                  f"#{prev.connection_id} to {prev.domain} ({prev.ip}) "
                  f"was reusable")
            blockers = reuse_blockers(prev, record.domain, record.ip)
            if blockers:
                for blocker in blockers:
                    print(f"          - {blocker}")
            else:
                print("          - RFC 7540 reuse allowed; the Fetch "
                      "Standard credentials partition forced a new "
                      "connection")

    if verdict.excluded_domains:
        print(f"\nDomains excluded via HTTP 421: "
              f"{sorted(verdict.excluded_domains)}")


if __name__ == "__main__":
    main()
