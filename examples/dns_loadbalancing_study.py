"""The Appendix A.4 DNS study: who could coalesce, and when?

Resolves the paper's flagship domain pairs every six simulated minutes
for two simulated days through the 14-resolver fleet of Table 11 and
renders the Figure 3 overlap heatmap.  Pairs whose answers never overlap
(GA/GTM, Facebook, wp.com) can never be coalesced by HTTP/2 Connection
Reuse; fluctuating pairs (gstatic, google ads) coalesce only when the
load balancers happen to agree.

Run:  python examples/dns_loadbalancing_study.py
"""

from __future__ import annotations

from repro import DnsLoadBalancingStudy, Ecosystem, EcosystemConfig
from repro.analysis.figures import Figure3Result


def main() -> None:
    ecosystem = Ecosystem.generate(EcosystemConfig(seed=7, n_sites=50))
    study = DnsLoadBalancingStudy(
        ecosystem=ecosystem, duration_s=2 * 24 * 3600.0
    )
    print("Resolving domain pairs through 14 resolvers over 2 sim-days...")
    result = study.run()

    print()
    print(Figure3Result(study=result).render(max_slots=72))

    print("\nSummary (share of resolver-slots with overlapping answers):")
    for timeline in sorted(result.timelines, key=lambda t: -t.mean_overlap()):
        print(f"  {timeline.mean_overlap():6.1%}  {timeline.pair.domain} "
              f"/ prev: {timeline.pair.prev}  [{timeline.classification()}]")

    never = [t for t in result.timelines if t.classification() == "never"]
    print(f"\n{len(never)} of {len(result.timelines)} pairs can NEVER be "
          "coalesced from any vantage point — their redundant connections "
          "are structural, exactly the paper's cause-IP finding.")


if __name__ == "__main__":
    main()
