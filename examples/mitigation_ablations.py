"""Measure the paper's proposed mitigations.

The conclusion of the paper names the levers; this example quantifies
each of them on identical synthetic worlds:

* browsers dropping the Fetch credentials partition (removes CRED),
* services coordinating DNS answers for coalescable domains
  (collapses the dominant IP cause for adopting parties),
* operators merging per-shard certificates (removes CERT),
* servers sending RFC 8336 ORIGIN frames + browsers honouring them.

Run:  python examples/mitigation_ablations.py
"""

from __future__ import annotations

from repro import compare_mitigations
from repro.core import Cause


def main() -> None:
    print("Measuring baseline + 4 mitigations (5 crawls)...")
    comparison = compare_mitigations(seed=7, n_sites=200, top=120)

    print()
    print(comparison.render())

    print("\nPer-cause connections:")
    header = f"  {'variant':<22}{'IP':>6}{'CRED':>6}{'CERT':>6}{'total':>7}"
    print(header)
    baseline = comparison.baseline.report
    rows = [("baseline", baseline)]
    rows += [(name, outcome.report) for name, outcome in
             comparison.outcomes.items()]
    for name, report in rows:
        print(f"  {name:<22}"
              f"{report.by_cause[Cause.IP].connections:>6}"
              f"{report.by_cause[Cause.CRED].connections:>6}"
              f"{report.by_cause[Cause.CERT].connections:>6}"
              f"{report.redundant_connections:>7}")

    print(
        "\nNote how each lever removes (almost exactly) its own cause — "
        "and how coordinated DNS, attacking the dominant IP cause, buys "
        "the largest single reduction, matching the paper's takeaways."
    )


if __name__ == "__main__":
    main()
