"""Quickstart: run the full reproduction study and print Table 1.

Builds a small synthetic web (400 sites), crawls it the way the paper's
two measurement campaigns did (HTTP Archive style + Alexa/Browsertime
style, with and without the Fetch Standard patch), classifies every
connection, and prints the paper's headline artefacts.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Study, StudyConfig, figure2, headline, table1, table2


def main() -> None:
    print("Generating the synthetic web and running both crawls...")
    study = Study.run(StudyConfig(seed=7, n_sites=400))

    print()
    print(table1(study).render())
    print()
    print(table2(study).render())
    print()
    print(headline(study).render())
    print()
    print(figure2(study).render(max_x=8, width=40))

    alexa = study.dataset("alexa").report
    print()
    print(
        f"Takeaway: {alexa.redundant_site_share():.0%} of Alexa sites opened "
        "at least one redundant HTTP/2 connection — redundant connections "
        "are no story of the past."
    )


if __name__ == "__main__":
    main()
