"""Performance impact of redundant connections (the paper's future work).

For every crawled site, builds the *coalesced counterfactual* — all
redundant connections merged into the connection that Connection Reuse
would have allowed — and costs both variants with a TCP+TLS handshake
model, a slow-start transfer model, and a real HPACK encoder.

Run:  python examples/performance_whatif.py
"""

from __future__ import annotations

from repro import Study, StudyConfig
from repro.perf import PathModel, corpus_impact, whatif_site


def main() -> None:
    print("Running the study (300 sites)...")
    study = Study.run(StudyConfig(seed=7, n_sites=300))
    dataset = study.dataset("alexa")

    impact = corpus_impact(dataset, {}, path=PathModel(vantage="DE"))
    print()
    print(impact.render())

    print("\nFive sites with the largest relative saving:")
    worst = sorted(impact.results, key=lambda r: -r.relative_saving)[:5]
    for result in worst:
        print(f"  {result.site:<22} {result.baseline.connections:>3} conns "
              f"-> {result.coalesced.connections:>3}  "
              f"setup saved {result.setup_time_saved_s * 1000:6.1f} ms  "
              f"headers saved {result.header_bytes_saved:>5} B  "
              f"({result.relative_saving:.0%} of modelled load cost)")

    sample = worst[0]
    detail = whatif_site(
        sample.site,
        dataset.classifications[sample.site].records,
        dataset.classifications[sample.site],
    )
    print(f"\nDetail for {detail.site}:")
    for label, estimate in (("measured", detail.baseline),
                            ("coalesced", detail.coalesced)):
        print(f"  {label:<10} {estimate.connections:>3} conns, "
              f"{estimate.dns_lookups:>3} DNS lookups, "
              f"setup {estimate.setup_time_s * 1000:7.1f} ms, "
              f"transfer {estimate.transfer_time_s * 1000:8.1f} ms, "
              f"headers {estimate.header_bytes:>6} B "
              f"(ratio {estimate.header_compression_ratio:.2f})")


if __name__ == "__main__":
    main()
