"""The HTTP Archive pipeline end to end (§4.2.1 / §4.3).

Crawls a slice of the synthetic web HTTP-Archive-style (three loads per
site, median HAR kept, realistic logging inconsistencies injected),
then sanitises the HARs with the paper's filter cascade and compares the
endless and immediate lifetime models — the paper's upper/lower bounds
on redundancy.

Run:  python examples/har_pipeline_demo.py
"""

from __future__ import annotations

from repro import Ecosystem, EcosystemConfig, HttpArchiveCrawler, LifetimeModel
from repro.har.reader import read_sessions
from repro.util.formatting import align_table, pct


def main() -> None:
    ecosystem = Ecosystem.generate(EcosystemConfig(seed=7, n_sites=150))
    crawler = HttpArchiveCrawler(ecosystem=ecosystem, seed=11)
    domains = ecosystem.httparchive_sample(0.8, seed=1)

    print(f"Crawling {len(domains)} sites (3 loads each, median HAR)...")
    corpus = crawler.crawl(domains)
    print(f"  {len(corpus.hars)} HARs, {len(corpus.unreachable)} unreachable")

    # The §4.3 sanitiser tally.
    total = read_sessions(next(iter(corpus.hars.values()))).stats
    for har in list(corpus.hars.values())[1:]:
        total.merge(read_sessions(har).stats)
    print("\nFilter cascade (paper §4.3):")
    rows = [
        ["socket id 0 (HTTP/3)", str(total.socket_id_zero)],
        ["missing IP", str(total.missing_ip)],
        ["inconsistent IP", str(total.inconsistent_ip)],
        ["invalid method", str(total.invalid_method)],
        ["invalid version", str(total.invalid_version)],
        ["invalid status", str(total.invalid_status)],
        ["HTTP/1 or HTTP/3", str(total.http1_or_h3)],
        ["missing certificate", str(total.missing_certificate)],
        ["accepted HTTP/2 requests", str(total.accepted)],
    ]
    print(align_table(rows, header=["category", "requests"]))

    print("\nClassification under both lifetime models:")
    endless = corpus.classify(model=LifetimeModel.ENDLESS, asdb=ecosystem.asdb)
    immediate = corpus.classify(model=LifetimeModel.IMMEDIATE,
                                asdb=ecosystem.asdb)
    rows = []
    for dataset in (endless, immediate):
        report = dataset.report
        rows.append([
            dataset.model.value,
            str(report.redundant_sites),
            pct(report.redundant_sites, report.h2_sites),
            str(report.redundant_connections),
            pct(report.redundant_connections, report.h2_connections),
        ])
    print(align_table(rows, header=["model", "red. sites", "site %",
                                    "red. conns", "conn %"]))
    print(
        "\nEndless (upper bound) vs immediate (lower bound) brackets the "
        "paper's 36%-72% headline range for the HTTP Archive."
    )


if __name__ == "__main__":
    main()
