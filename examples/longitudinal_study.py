"""Longitudinal study: how certificate rotation erodes the paper's numbers.

Runs the same 120-site study at epochs 0..5 of the ``cert-rotation``
churn policy (certificates renew, SAN sets split and merge, services
re-key credential modes) and prints the attribution-drift report:
reuse trajectory per dataset, CERT/IP/CRED drift per epoch, the
reuse-opportunity half-life, and the churn ledger.

Epoch 0 is byte-identical to a plain ``Study.run`` of the same config —
the evolution engine is provably inert until the first epoch.

Run:  python examples/longitudinal_study.py
"""

from __future__ import annotations

from repro.analysis.study import StudyConfig
from repro.evolve import run_longitudinal


def main() -> None:
    config = StudyConfig(seed=7, n_sites=120, dns_study_days=0.25)
    print("Measuring 6 epochs of certificate rotation "
          f"(seed={config.seed}, n_sites={config.n_sites})...")
    result = run_longitudinal(
        config, policy="cert-rotation", epochs=5, progress=print
    )

    print()
    print(result.render())

    alexa_series = [
        snapshot.datasets["alexa"].redundant_connections
        for snapshot in result.snapshots
    ]
    print()
    print(
        "Takeaway: routine rotation leaves SAN sets (and hence reuse "
        "opportunities) intact, while the rarer SAN splits/merges and "
        f"credential re-keys drift Alexa redundancy {alexa_series[0]} -> "
        f"{alexa_series[-1]} connections over 5 epochs — ecosystem churn "
        "moves the paper's numbers without any change in browser "
        "behaviour."
    )


if __name__ == "__main__":
    main()
